package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ann"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/store"
)

func persistCorpus(n int) *graph.Corpus {
	return datagen.ChemicalCorpus(11, n, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 12})
}

func persistBatch(i int) (added []*graph.Graph, removed []string) {
	rng := rand.New(rand.NewSource(int64(500 + i)))
	for j := 0; j < 2; j++ {
		added = append(added, datagen.Chemical(rng, fmt.Sprintf("pb-%d-%d", i, j),
			datagen.ChemicalOptions{MinNodes: 5, MaxNodes: 9}))
	}
	if i >= 2 {
		removed = []string{fmt.Sprintf("pb-%d-0", i-2)}
	}
	return added, removed
}

// assertEquivalent asserts two DurableIndex states are observationally
// byte-equivalent: same corpus (names, order, structure), same per-shard
// epochs, same exact-search answers, and — when ANN is enabled — same
// similarity shortlists, scores included.
func assertEquivalent(t *testing.T, got, want *DurableIndex) {
	t.Helper()
	gc, wc := got.Corpus(), want.Corpus()
	if gc.Len() != wc.Len() {
		t.Fatalf("corpus length %d, want %d", gc.Len(), wc.Len())
	}
	wc.Each(func(i int, wg *graph.Graph) {
		if gg := gc.Graph(i); gg.Name() != wg.Name() || gg.Dump() != wg.Dump() {
			t.Fatalf("corpus graph %d (%s) differs after recovery", i, wg.Name())
		}
	})
	gi, wi := got.Index(), want.Index()
	if !reflect.DeepEqual(gi.Epochs(), wi.Epochs()) {
		t.Fatalf("epochs %v, want %v", gi.Epochs(), wi.Epochs())
	}
	rng := rand.New(rand.NewSource(77))
	for qi := 0; qi < 4; qi++ {
		src := wc.Graph(rng.Intn(wc.Len()))
		q := datagen.RandomConnectedSubgraph(rng, src, 4)
		if q == nil {
			continue
		}
		opts := pattern.MatchOptions()
		gr, wr := gi.Search(q, opts), wi.Search(q, opts)
		if !reflect.DeepEqual(gr.Matches, wr.Matches) {
			t.Fatalf("query %d: search %v, want %v", qi, gr.Matches, wr.Matches)
		}
		if gi.ANNEnabled() {
			gs, gerr := gi.Similar(q, gindex.SimilarOptions{K: 5})
			ws, werr := wi.Similar(q, gindex.SimilarOptions{K: 5})
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("query %d: similar err %v vs %v", qi, gerr, werr)
			}
			if gerr == nil && !reflect.DeepEqual(gs.Matches, ws.Matches) {
				t.Fatalf("query %d: similar %v, want %v", qi, gs.Matches, ws.Matches)
			}
		}
	}
}

// TestDurableIndexCrashRecovery is the full-stack crash property: for
// every store fault site and call number, run a seeded boot + update
// stream with the fault armed, "crash" (abandon the instance), recover
// from the directory, and assert the recovered index is equivalent —
// corpus, epochs, exact search, ANN shortlists — to a never-crashed
// oracle that applied exactly the durable prefix.
func TestDurableIndexCrashRecovery(t *testing.T) {
	const nBatches = 5
	seed := persistCorpus(10)
	annCfg := ann.Config{Tables: 4, Bits: 6, Seed: 3}
	baseOpts := DurableIndexOptions{Shards: 4, Workers: 2, ANN: &annCfg}

	// Oracle chain: never-crashed DurableIndex states after each seq,
	// rebuilt per subtest from a pristine directory.
	buildOracle := func(t *testing.T, upto int) *DurableIndex {
		dir := t.TempDir()
		di, _, err := OpenDurableIndex(context.Background(), dir, seed.Clone(), baseOpts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < upto; i++ {
			added, removed := persistBatch(i)
			if _, _, err := di.ApplyBatch(added, removed); err != nil {
				t.Fatal(err)
			}
		}
		return di
	}

	sites := []string{"store.wal.append", "store.wal.fsync", "store.snapshot.write", "store.recover.replay"}
	for _, mmap := range []bool{false, true} {
		recOpts := baseOpts
		recOpts.Store = store.Options{Mmap: mmap}
		for _, site := range sites {
			for call := 0; call < nBatches+1; call++ {
				t.Run(fmt.Sprintf("mmap-%v/%s/call-%d", mmap, site, call), func(t *testing.T) {
					dir := t.TempDir()
					inj := faultinject.New(13, faultinject.Fault{
						Site:  site,
						Err:   errors.New("injected crash"),
						After: call,
						Count: 1,
					})
					opts := baseOpts
					opts.Store = store.Options{Inject: inj}
					di, _, err := OpenDurableIndex(context.Background(), dir, seed.Clone(), opts)
					if err != nil {
						// Crash during seeding: nothing durable yet — recovery from
						// the same seed must reach a clean initial state.
						rec, rep, rerr := OpenDurableIndex(context.Background(), dir, seed.Clone(), recOpts)
						if rerr != nil {
							t.Fatalf("recovery after seed crash: %v", rerr)
						}
						defer rec.Close()
						if rep.Seq != 0 {
							t.Fatalf("seed-crash recovery at seq %d", rep.Seq)
						}
						oracle := buildOracle(t, 0)
						defer oracle.Close()
						assertEquivalent(t, rec, oracle)
						return
					}
					acked := 0
					attempted := 0
					for i := 0; i < nBatches; i++ {
						added, removed := persistBatch(i)
						attempted++
						if _, _, err := di.ApplyBatch(added, removed); err != nil {
							break
						}
						acked++
						if i == 2 {
							// Mid-stream compaction: snapshot write + WAL fold under
							// the armed fault too.
							if _, err := di.Compact(); err != nil {
								break
							}
						}
					}
					// Crash: abandon di without Close (releases the directory
					// lock the way a process death would, flushes nothing).
					di.Abandon()

					rec, rep, err := OpenDurableIndex(context.Background(), dir, seed.Clone(), recOpts)
					if err != nil {
						t.Fatalf("recovery failed: %v", err)
					}
					defer rec.Close()
					k := int(rep.Seq)
					if k < acked || k > attempted {
						t.Fatalf("recovered seq %d outside [acked=%d, attempted=%d]", k, acked, attempted)
					}
					oracle := buildOracle(t, k)
					defer oracle.Close()
					assertEquivalent(t, rec, oracle)

					// Recovered instance must accept further durable updates.
					added, removed := persistBatch(k)
					seq, _, err := rec.ApplyBatch(added, removed)
					if err != nil {
						t.Fatalf("post-recovery apply: %v", err)
					}
					if seq != uint64(k+1) {
						t.Fatalf("post-recovery seq %d, want %d", seq, k+1)
					}
				})
			}
		}
	}
}

// TestDurableIndexMmapColdBoot pins the O(index) boot contract: after a
// compaction wrote sections, an -mmap reopen restores every shard from
// its persisted section without hydrating a single graph, and still
// answers exactly like the eager boot.
func TestDurableIndexMmapColdBoot(t *testing.T) {
	dir := t.TempDir()
	seed := persistCorpus(12)
	annCfg := ann.Config{Tables: 4, Bits: 6, Seed: 3}
	opts := DurableIndexOptions{Shards: 4, Workers: 2, ANN: &annCfg}
	di, _, err := OpenDurableIndex(context.Background(), dir, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		added, removed := persistBatch(i)
		if _, _, err := di.ApplyBatch(added, removed); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := di.Compact(); err != nil {
		t.Fatal(err)
	}
	di.Close()

	mopts := opts
	mopts.Store = store.Options{Mmap: true}
	rec, rep, err := OpenDurableIndex(context.Background(), dir, nil, mopts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SectionsRestored != 4 || rep.SectionsRebuilt != 0 {
		t.Fatalf("sections restored/rebuilt = %d/%d, want 4/0", rep.SectionsRestored, rep.SectionsRebuilt)
	}
	if rep.Replayed != 0 {
		t.Fatalf("replayed %d batches after compaction", rep.Replayed)
	}
	if !rep.EpochsRestored {
		t.Fatal("epochs not restored")
	}
	// The whole point: nothing was decoded at boot.
	rc := rec.Corpus()
	for i := 0; i < rc.Len(); i++ {
		if rc.Hydrated(i) {
			t.Fatalf("graph %d hydrated during mmap cold boot", i)
		}
	}
	// Answers match a never-restarted instance that applied the same
	// batch chain (hydrating on demand as queries touch graphs).
	eager, _, err := OpenDurableIndex(context.Background(), t.TempDir(), persistCorpus(12), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()
	for i := 0; i < 3; i++ {
		added, removed := persistBatch(i)
		if _, _, err := eager.ApplyBatch(added, removed); err != nil {
			t.Fatal(err)
		}
	}
	assertEquivalent(t, rec, eager)
	rec.Close()
}

// TestDurableIndexMmapSectionEpochMismatchRebuilds: a snapshot whose
// sections disagree with the recovered epochs (here: stale sections from
// an older compaction followed by more batches) must rebuild, not restore
// stale index state.
func TestDurableIndexMmapSuffixReplayRebuildsTouchedShards(t *testing.T) {
	dir := t.TempDir()
	seed := persistCorpus(10)
	opts := DurableIndexOptions{Shards: 4, Workers: 2}
	di, _, err := OpenDurableIndex(context.Background(), dir, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	added0, removed0 := persistBatch(0)
	if _, _, err := di.ApplyBatch(added0, removed0); err != nil {
		t.Fatal(err)
	}
	if _, err := di.Compact(); err != nil {
		t.Fatal(err)
	}
	// A post-compaction batch leaves a WAL suffix past the sections.
	added1, removed1 := persistBatch(1)
	if _, _, err := di.ApplyBatch(added1, removed1); err != nil {
		t.Fatal(err)
	}
	di.Close()

	mopts := opts
	mopts.Store = store.Options{Mmap: true}
	rec, rep, err := OpenDurableIndex(context.Background(), dir, nil, mopts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 1 {
		t.Fatalf("replayed %d, want 1", rep.Replayed)
	}
	if rep.SectionsRestored == 0 {
		t.Fatal("no sections restored despite matching epochs at snapshot seq")
	}
	// Replay went through ApplyBatch, so epochs must match the live chain.
	eager, _, err := OpenDurableIndex(context.Background(), t.TempDir(), seed.Clone(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eager.Close()
	if _, _, err := eager.ApplyBatch(added0, removed0); err != nil {
		t.Fatal(err)
	}
	if _, err := eager.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eager.ApplyBatch(added1, removed1); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, rec, eager)
}

// TestDurableIndexCompactThenRecover pins the compaction path end to end:
// epochs recovered from a compacted snapshot match the live instance even
// though no WAL records remain to replay.
func TestDurableIndexCompactThenRecover(t *testing.T) {
	dir := t.TempDir()
	seed := persistCorpus(12)
	opts := DurableIndexOptions{Shards: 3, Workers: 1}
	di, rep, err := OpenDurableIndex(context.Background(), dir, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Seeded {
		t.Fatal("fresh dir not seeded")
	}
	for i := 0; i < 4; i++ {
		added, removed := persistBatch(i)
		if _, _, err := di.ApplyBatch(added, removed); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := di.Compact(); err != nil {
		t.Fatal(err)
	}
	di.Close()

	rec, rrep, err := OpenDurableIndex(context.Background(), dir, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rrep.Replayed != 0 {
		t.Fatalf("replayed %d batches after compaction, want 0", rrep.Replayed)
	}
	if !rrep.EpochsRestored {
		t.Fatal("epochs not restored from compacted snapshot")
	}
	if !reflect.DeepEqual(rec.Index().Epochs(), di.Index().Epochs()) {
		t.Fatalf("epochs %v, want %v", rec.Index().Epochs(), di.Index().Epochs())
	}
	if rec.Corpus().Len() != di.Corpus().Len() {
		t.Fatalf("corpus len %d, want %d", rec.Corpus().Len(), di.Corpus().Len())
	}
}

// TestDurableIndexShardCountChange: restarting with a different shard
// count is allowed — epochs restart at zero (cache warmth lost, nothing
// else) and the corpus still recovers exactly.
func TestDurableIndexShardCountChange(t *testing.T) {
	dir := t.TempDir()
	seed := persistCorpus(10)
	di, _, err := OpenDurableIndex(context.Background(), dir, seed, DurableIndexOptions{Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	added, removed := persistBatch(0)
	if _, _, err := di.ApplyBatch(added, removed); err != nil {
		t.Fatal(err)
	}
	if _, err := di.Compact(); err != nil {
		t.Fatal(err)
	}
	di.Close()

	rec, rep, err := OpenDurableIndex(context.Background(), dir, nil, DurableIndexOptions{Shards: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.EpochsRestored {
		t.Fatal("epochs claimed restored across a shard-count change")
	}
	if rec.Index().NumShards() != 5 {
		t.Fatalf("shards = %d, want 5", rec.Index().NumShards())
	}
	if rec.Corpus().Len() != di.Corpus().Len() {
		t.Fatalf("corpus len %d, want %d", rec.Corpus().Len(), di.Corpus().Len())
	}
}

// TestDurableIndexRejectsInvalidBatch: validation happens before the WAL
// append, so a rejected batch leaves no durable record and no state
// change.
func TestDurableIndexRejectsInvalidBatch(t *testing.T) {
	dir := t.TempDir()
	di, _, err := OpenDurableIndex(context.Background(), dir, persistCorpus(6), DurableIndexOptions{Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := di.ApplyBatch(nil, []string{"no-such-graph"}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if di.LastSeq() != 0 {
		t.Fatalf("rejected batch advanced seq to %d", di.LastSeq())
	}
	di.Close()
	rec, rep, err := OpenDurableIndex(context.Background(), dir, nil, DurableIndexOptions{Shards: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 0 || rep.Seq != 0 {
		t.Fatalf("rejected batch left durable traces: %+v", rep)
	}
}
