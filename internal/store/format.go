// Package store is the crash-safe persistence engine behind the corpus and
// its sharded index. It combines two durable artifacts in one data
// directory:
//
//   - Snapshots — versioned, length-prefixed, CRC32C-checksummed binary
//     images of the corpus (graphs with interned labels and CSR row
//     offsets) plus the sharded index's metadata (shard count, per-shard
//     epochs) as of a WAL sequence number. Snapshots are written to a
//     temporary file and atomically renamed into place; the previous
//     snapshot is retained so a corrupted latest image degrades to the
//     last durable state instead of losing everything.
//
//   - A write-ahead log — an append-only file of checksummed batch
//     records (added graphs + removed names) with monotonically
//     increasing sequence numbers and a configurable fsync policy. A
//     batch is durable once Append returns; serving layers acknowledge
//     updates only after that point.
//
// Recovery (Open) = load the newest valid snapshot, truncate any torn or
// corrupt WAL tail at the first invalid record, and hand back the WAL
// suffix (records with seq > snapshot seq) for the caller to replay
// through the existing index-maintenance path (gindex.ApplyBatch).
// Corruption anywhere — a torn tail from a mid-write crash, a flipped bit
// from a bad disk — is detected by checksum and degrades to the last
// durable prefix; it is never replayed as garbage.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/graph"
)

// castagnoli is the CRC32C polynomial table. CRC32C has hardware support
// on amd64/arm64, so per-record checksumming is nearly free next to the
// write itself.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a frame or payload whose checksum, length, or
// structure is invalid. Recovery treats it as "the durable prefix ends
// here", never as data.
var ErrCorrupt = errors.New("store: corrupt record")

// frameHeaderSize is the fixed per-frame prefix: u32 payload length +
// u32 CRC32C of the payload, both little-endian.
const frameHeaderSize = 8

// maxFrameSize caps a single frame's payload. It bounds the allocation a
// corrupted length field can demand during recovery; 1 GiB is far beyond
// any legitimate snapshot section or WAL batch.
const maxFrameSize = 1 << 30

// appendFrame appends a length-prefixed, checksummed frame to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads one frame from r. It returns io.EOF exactly when the
// reader is positioned at a clean end (zero bytes remain); a partial
// header or body, a bogus length, or a checksum mismatch return
// ErrCorrupt. The returned payload is freshly allocated.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		// A partial header is a torn write, not a clean end.
		return nil, fmt.Errorf("%w: torn frame header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn frame body", ErrCorrupt)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}

// frameAt validates the frame spanning data[off : off+length] — length
// includes the 8-byte header — and returns its payload, aliasing data (the
// caller treats it as read-only; this is the zero-copy hydration path over
// an mmap'd snapshot). The CRC is checked on every call, so a bit flipped
// under the mapping is detected at touch time, never decoded as data.
func frameAt(data []byte, off, length uint64) ([]byte, error) {
	if length < frameHeaderSize || length > maxFrameSize+frameHeaderSize ||
		off > uint64(len(data)) || length > uint64(len(data))-off {
		return nil, fmt.Errorf("%w: frame bounds [%d,+%d) outside %d-byte snapshot", ErrCorrupt, off, length, len(data))
	}
	b := data[off : off+length]
	if uint64(binary.LittleEndian.Uint32(b[0:4])) != length-frameHeaderSize {
		return nil, fmt.Errorf("%w: frame length field disagrees with frame index", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	payload := b[frameHeaderSize:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}

// enc is a tiny append-only encoder over a byte slice.
type enc struct{ b []byte }

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// dec is the matching sticky-error decoder. After the first failure every
// subsequent read returns zero values; callers check err once at the end.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return nil
}

// encodeGraphInterned encodes g with node/edge labels replaced by ids from
// intern (the snapshot-wide label table). Edges are stored in insertion
// order so decoding reconstructs the graph exactly — same node ids, same
// edge ids, same adjacency iteration order. A CSR row-start array (the
// degree prefix sum of the sorted-adjacency snapshot) rides along so
// loaders can pre-size adjacency and cross-check structure beyond the
// frame checksum.
func encodeGraphInterned(e *enc, g *graph.Graph, intern func(string) uint32) {
	e.str(g.Name())
	n, m := g.NumNodes(), g.NumEdges()
	e.uvarint(uint64(n))
	for i := 0; i < n; i++ {
		e.uvarint(uint64(intern(g.NodeLabel(i))))
	}
	e.uvarint(uint64(m))
	for _, ed := range g.Edges() {
		e.uvarint(uint64(ed.U))
		e.uvarint(uint64(ed.V))
		e.uvarint(uint64(intern(ed.Label)))
	}
	// CSR rows: row-start offsets of the adjacency (offsets[v+1]-offsets[v]
	// = degree of v). Derived data, but cheap (n+1 uvarints) and lets the
	// loader verify the decoded structure degree-by-degree.
	off := uint64(0)
	e.uvarint(off)
	for i := 0; i < n; i++ {
		off += uint64(g.Degree(i))
		e.uvarint(off)
	}
}

// decodeGraphInterned is the inverse of encodeGraphInterned. labels maps
// interned ids back to strings.
func decodeGraphInterned(d *dec, labels []string) (*graph.Graph, error) {
	name := d.str()
	g := graph.New(name)
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: graph %q node count %d", ErrCorrupt, name, n)
	}
	lookup := func(id uint64) (string, error) {
		if id >= uint64(len(labels)) {
			return "", fmt.Errorf("%w: graph %q label id %d out of range [0,%d)", ErrCorrupt, name, id, len(labels))
		}
		return labels[id], nil
	}
	for i := uint64(0); i < n; i++ {
		l, err := lookup(d.uvarint())
		if err != nil {
			return nil, err
		}
		g.AddNode(l)
	}
	m := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if m > maxFrameSize {
		return nil, fmt.Errorf("%w: graph %q edge count %d", ErrCorrupt, name, m)
	}
	for i := uint64(0); i < m; i++ {
		u := d.uvarint()
		v := d.uvarint()
		l, err := lookup(d.uvarint())
		if err != nil {
			return nil, err
		}
		if d.err != nil {
			return nil, d.err
		}
		if u >= n || v >= n {
			return nil, fmt.Errorf("%w: graph %q edge endpoint out of range", ErrCorrupt, name)
		}
		if _, err := g.AddEdge(int(u), int(v), l); err != nil {
			return nil, fmt.Errorf("%w: graph %q: %v", ErrCorrupt, name, err)
		}
	}
	// Validate the CSR row starts against the rebuilt adjacency.
	prev := d.uvarint()
	if prev != 0 {
		return nil, fmt.Errorf("%w: graph %q CSR rows do not start at 0", ErrCorrupt, name)
	}
	for i := uint64(0); i < n; i++ {
		off := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if off-prev != uint64(g.Degree(int(i))) {
			return nil, fmt.Errorf("%w: graph %q CSR row %d degree mismatch", ErrCorrupt, name, i)
		}
		prev = off
	}
	if d.err != nil {
		return nil, d.err
	}
	return g, nil
}

// encodeGraphInline encodes g with labels inline (no shared table) — the
// WAL form, where batches are small and self-contained records beat a
// per-file intern table.
func encodeGraphInline(e *enc, g *graph.Graph) {
	e.str(g.Name())
	n, m := g.NumNodes(), g.NumEdges()
	e.uvarint(uint64(n))
	for i := 0; i < n; i++ {
		e.str(g.NodeLabel(i))
	}
	e.uvarint(uint64(m))
	for _, ed := range g.Edges() {
		e.uvarint(uint64(ed.U))
		e.uvarint(uint64(ed.V))
		e.str(ed.Label)
	}
}

// decodeGraphInline is the inverse of encodeGraphInline.
func decodeGraphInline(d *dec) (*graph.Graph, error) {
	name := d.str()
	g := graph.New(name)
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: graph %q node count %d", ErrCorrupt, name, n)
	}
	for i := uint64(0); i < n; i++ {
		g.AddNode(d.str())
	}
	m := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if m > maxFrameSize {
		return nil, fmt.Errorf("%w: graph %q edge count %d", ErrCorrupt, name, m)
	}
	for i := uint64(0); i < m; i++ {
		u := d.uvarint()
		v := d.uvarint()
		l := d.str()
		if d.err != nil {
			return nil, d.err
		}
		if u >= n || v >= n {
			return nil, fmt.Errorf("%w: graph %q edge endpoint out of range", ErrCorrupt, name)
		}
		if _, err := g.AddEdge(int(u), int(v), l); err != nil {
			return nil, fmt.Errorf("%w: graph %q: %v", ErrCorrupt, name, err)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return g, nil
}
