package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Mapped snapshot loading: the Options.Mmap boot path. Instead of decoding
// the whole corpus, it walks footer → frame index → header + labels +
// section frames — O(index), independent of total graph bytes — and
// registers a lazy corpus whose entries decode straight from the mapping
// on first touch. Each hydration re-checks its frame's CRC, so corruption
// under the mapping surfaces as ErrCorrupt at touch time, never as a wrong
// graph.

// snapMapping owns the bytes of one mapped (or, on non-unix platforms,
// fully read) snapshot file. Lazy corpus entries keep it reachable through
// their loader closures; when the last corpus referencing it is collected,
// the finalizer returns the mapping to the OS. Nothing unmaps eagerly —
// Store.Close must not, since hydrations may still be in flight long after
// the store handle is gone.
type snapMapping struct {
	data   []byte
	mapped bool
}

// openSnapMapping maps path read-only, falling back to a plain read when
// the platform (or filesystem) cannot mmap.
func openSnapMapping(path string) (*snapMapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mapFile(f, fi.Size())
	if err != nil || !mapped {
		data, err = os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		mapped = false
	}
	m := &snapMapping{data: data, mapped: mapped}
	if mapped {
		runtime.SetFinalizer(m, func(m *snapMapping) { unmapFile(m.data) })
	}
	return m, nil
}

// loadSnapshotMapped validates the snapshot covering seq by its index
// structures only and returns a lazy corpus plus the persisted index
// sections. mapped reports whether the graphs really are backed by an OS
// mapping (false on the read fallback and for v1 files, which take the
// eager path). A corrupt section frame is skipped — the caller rebuilds
// that shard — while a corrupt header, label table, frame index, or footer
// rejects the whole snapshot so recovery falls back to the previous one.
func loadSnapshotMapped(dir string, seq uint64) (c *graph.Corpus, meta SnapshotMeta, sections []IndexSection, mapped bool, err error) {
	path := filepath.Join(dir, snapName(seq))
	fi, err := os.Stat(path)
	if err != nil {
		return nil, meta, nil, false, err
	}
	if fi.Size() >= 8 {
		var magic [8]byte
		f, err := os.Open(path)
		if err != nil {
			return nil, meta, nil, false, err
		}
		_, rerr := f.ReadAt(magic[:], 0)
		f.Close()
		if rerr == nil && string(magic[:6]) == snapMagic && magic[6] == snapVersionV1 {
			// Old snapshot: no frame index to map by. Eager v1 load.
			c, meta, err := loadSnapshotFile(dir, seq)
			return c, meta, nil, false, err
		}
	}

	m, err := openSnapMapping(path)
	if err != nil {
		return nil, meta, nil, false, err
	}
	data := m.data
	if len(data) < 8+snapFooterSize {
		return nil, meta, nil, false, fmt.Errorf("%w: snapshot shorter than magic + footer", ErrCorrupt)
	}
	if string(data[:6]) != snapMagic || data[7] != '\n' {
		return nil, meta, nil, false, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, data[:8])
	}
	if data[6] != snapVersion {
		return nil, meta, nil, false, fmt.Errorf("store: unsupported snapshot version %d", data[6])
	}

	var foot [snapFooterSize]byte
	copy(foot[:], data[len(data)-snapFooterSize:])
	if err := checkFooter(foot, ^uint64(0)); err != nil {
		return nil, meta, nil, false, err
	}
	fiOff := binary.LittleEndian.Uint64(foot[0:8])
	bodyEnd := uint64(len(data) - snapFooterSize)
	if fiOff < 8 || fiOff >= bodyEnd {
		return nil, meta, nil, false, fmt.Errorf("%w: footer frame-index offset %d outside file", ErrCorrupt, fiOff)
	}

	// Header and labels sit right after the magic.
	hdrb, err := frameAtNext(data, 8)
	if err != nil {
		return nil, meta, nil, false, fmt.Errorf("snapshot header: %w", err)
	}
	meta, labelCount, graphCount, sectionCount, err := decodeSnapshotHeader(hdrb, seq, true)
	if err != nil {
		return nil, meta, nil, false, err
	}
	labOff := 8 + frameHeaderSize + uint64(len(hdrb))
	labb, err := frameAtNext(data, labOff)
	if err != nil {
		return nil, meta, nil, false, fmt.Errorf("snapshot label table: %w", err)
	}
	labels, err := decodeLabelTable(labb, labelCount)
	if err != nil {
		return nil, meta, nil, false, err
	}

	// The frame index must span exactly [fiOff, bodyEnd).
	fib, err := frameAt(data, fiOff, bodyEnd-fiOff)
	if err != nil {
		return nil, meta, nil, false, fmt.Errorf("snapshot frame index: %w", err)
	}
	fd := dec{b: fib}
	if n := fd.u32(); n != graphCount {
		return nil, meta, nil, false, fmt.Errorf("%w: frame index lists %d graphs, header says %d", ErrCorrupt, n, graphCount)
	}
	c = graph.NewCorpus()
	minGraphOff := labOff + frameHeaderSize + uint64(len(labb))
	for i := uint32(0); i < graphCount; i++ {
		name := fd.str()
		off := fd.u64()
		n := fd.u64()
		if fd.err != nil {
			return nil, meta, nil, false, fmt.Errorf("snapshot frame index: %w", fd.err)
		}
		if off < minGraphOff || n < frameHeaderSize || off+n > fiOff || off+n < off {
			return nil, meta, nil, false, fmt.Errorf("%w: graph %q frame [%d,+%d) outside snapshot body", ErrCorrupt, name, off, n)
		}
		gname := name
		goff, gn := off, n
		if err := c.AddLazy(name, func() (*graph.Graph, error) {
			payload, err := frameAt(m.data, goff, gn)
			if err != nil {
				return nil, fmt.Errorf("snapshot graph %q: %w", gname, err)
			}
			g, err := decodeGraphPayload(payload, labels)
			if err != nil {
				return nil, fmt.Errorf("snapshot graph %q: %w", gname, err)
			}
			if g.Name() != gname {
				return nil, fmt.Errorf("%w: frame at %d holds graph %q, index says %q", ErrCorrupt, goff, g.Name(), gname)
			}
			return g, nil
		}); err != nil {
			return nil, meta, nil, false, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if n := fd.u32(); n != sectionCount {
		return nil, meta, nil, false, fmt.Errorf("%w: frame index lists %d sections, header says %d", ErrCorrupt, n, sectionCount)
	}
	for i := uint32(0); i < sectionCount; i++ {
		shard := fd.u32()
		epoch := fd.u64()
		off := fd.u64()
		n := fd.u64()
		if fd.err != nil {
			return nil, meta, nil, false, fmt.Errorf("snapshot frame index: %w", fd.err)
		}
		// Sections are degrade-not-reject: a bad frame means this shard is
		// rebuilt from the corpus, exactly like a shard with no section.
		payload, err := frameAt(data, off, n)
		if err != nil {
			if obs.On() {
				obsSectionsCorrupt.Inc()
			}
			continue
		}
		sd := dec{b: payload}
		gotShard := sd.u32()
		gotEpoch := sd.u64()
		if sd.err != nil || gotShard != shard || gotEpoch != epoch || int(shard) >= meta.Shards {
			if obs.On() {
				obsSectionsCorrupt.Inc()
			}
			continue
		}
		sections = append(sections, IndexSection{Shard: int(shard), Epoch: epoch, Data: sd.b})
		if obs.On() {
			obsSectionsLoaded.Inc()
		}
	}
	if err := fd.done(); err != nil {
		return nil, meta, nil, false, fmt.Errorf("snapshot frame index: %w", err)
	}
	if obs.On() {
		if m.mapped {
			obsSnapMapped.Inc()
		}
		obsSnapLoads.Inc()
	}
	return c, meta, sections, m.mapped, nil
}

// frameAtNext reads the frame whose header starts at off, taking its
// length from the header itself (bounds- and CRC-checked).
func frameAtNext(data []byte, off uint64) ([]byte, error) {
	if off+frameHeaderSize > uint64(len(data)) {
		return nil, fmt.Errorf("%w: frame header at %d outside file", ErrCorrupt, off)
	}
	n := uint64(binary.LittleEndian.Uint32(data[off : off+4]))
	return frameAt(data, off, frameHeaderSize+n)
}
