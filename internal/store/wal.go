package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/obs"
)

// WAL record layout (one frame per record, see format.go):
//
//	u32 payload length
//	u32 CRC32C(payload)
//	payload:
//	  u64 seq        monotonically increasing, no gaps
//	  u8  type       recBatch
//	  batch body:    removed names, then added graphs (labels inline)
//
// The torn-tail rule: a WAL is valid exactly up to its first invalid
// record. Recovery truncates the file there — a torn frame from a
// mid-write crash and a checksum-corrupted record are both "the log ends
// here", never data. Records are only appended under the store lock, so
// sequence numbers are dense; a gap after the snapshot's seq means lost
// state and fails recovery loudly instead of replaying a wrong suffix.

const (
	walFileName = "wal.vqilog"
	recBatch    = 1
)

var (
	obsWALAppends     = obs.Default.Counter("store_wal_appends_total")
	obsWALAppendBytes = obs.Default.Counter("store_wal_append_bytes_total")
	obsWALFsyncs      = obs.Default.Counter("store_wal_fsyncs_total")
	obsWALFsyncSec    = obs.Default.Histogram("store_wal_fsync_seconds")
	obsWALReplayed    = obs.Default.Counter("store_wal_replayed_records_total")
	obsWALTornTails   = obs.Default.Counter("store_wal_torn_tails_total")
	obsWALFsyncErrs   = obs.Default.Counter("store_wal_fsync_errors_total")
	obsWALRollbacks   = obs.Default.Counter("store_wal_rollbacks_total")
)

// Batch is one durable corpus update: the MIDAS batch shape (removals
// applied before additions) with its WAL sequence number.
type Batch struct {
	Seq     uint64
	Added   []*graph.Graph
	Removed []string
}

// encodeBatch builds the record payload for b at the given seq.
func encodeBatch(seq uint64, b Batch) []byte {
	var e enc
	e.u64(seq)
	e.u8(recBatch)
	e.uvarint(uint64(len(b.Removed)))
	for _, name := range b.Removed {
		e.str(name)
	}
	e.uvarint(uint64(len(b.Added)))
	for _, g := range b.Added {
		encodeGraphInline(&e, g)
	}
	return e.b
}

// decodeBatch parses a record payload.
func decodeBatch(payload []byte) (Batch, error) {
	d := dec{b: payload}
	b := Batch{Seq: d.u64()}
	if t := d.u8(); t != recBatch {
		if d.err == nil {
			return b, fmt.Errorf("%w: unknown WAL record type %d", ErrCorrupt, t)
		}
		return b, d.err
	}
	nr := d.uvarint()
	if d.err != nil {
		return b, d.err
	}
	if nr > maxFrameSize {
		return b, fmt.Errorf("%w: removal count %d", ErrCorrupt, nr)
	}
	for i := uint64(0); i < nr; i++ {
		b.Removed = append(b.Removed, d.str())
	}
	na := d.uvarint()
	if d.err != nil {
		return b, d.err
	}
	if na > maxFrameSize {
		return b, fmt.Errorf("%w: addition count %d", ErrCorrupt, na)
	}
	for i := uint64(0); i < na; i++ {
		g, err := decodeGraphInline(&d)
		if err != nil {
			return b, err
		}
		b.Added = append(b.Added, g)
	}
	if err := d.done(); err != nil {
		return b, err
	}
	return b, nil
}

// scanWAL reads every valid record from path, returning the records and
// the byte offset of the end of the valid prefix. A missing file is an
// empty log. torn reports whether invalid bytes followed the valid
// prefix (the caller truncates the file at validEnd).
func scanWAL(path string, inject *faultinject.Injector) (records []Batch, validEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()
	// Frame-by-frame read with explicit offset accounting so the torn-tail
	// truncation point is exact.
	br := &countingReader{r: f}
	for {
		payload, rerr := readFrame(br)
		if rerr == io.EOF {
			return records, validEnd, false, nil
		}
		if rerr != nil {
			// Torn or corrupt: the log ends at the last valid record.
			return records, validEnd, true, nil
		}
		b, derr := decodeBatch(payload)
		if derr != nil {
			return records, validEnd, true, nil
		}
		if ierr := inject.Fire("store.recover.replay"); ierr != nil {
			return records, validEnd, false, fmt.Errorf("store: recover replay: %w", ierr)
		}
		records = append(records, b)
		validEnd = br.n
		if obs.On() {
			obsWALReplayed.Inc()
		}
	}
}

// countingReader tracks how many bytes have been consumed.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// SyncPolicy controls when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch is
	// durable against power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery):
	// acknowledged batches are durable within that window. Appends still
	// reach the OS page cache immediately, so they survive a process
	// crash — only a machine crash inside the window can lose them.
	SyncInterval
	// SyncNone never fsyncs explicitly (the OS flushes on its own
	// schedule). For bulk loads and benchmarks.
	SyncNone
)

// ParseSyncPolicy maps a -wal-sync flag value to a policy: "always",
// "none", or a Go duration (e.g. "100ms") selecting interval sync.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "", "always":
		return SyncAlways, 0, nil
	case "none":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("store: bad sync policy %q (want always, none, or a positive duration)", s)
	}
	return SyncInterval, d, nil
}

// wal is the open append handle plus sync machinery.
type wal struct {
	f      *os.File
	path   string
	policy SyncPolicy
	// good is the byte offset of the end of the last acknowledged record:
	// a failed append rolls the file back to it so a torn or complete-but-
	// unacknowledged frame can never reach recovery. Guarded by the owning
	// Store's mutex (only append/rollback touch it).
	good int64

	// failMu guards failErr, the latched unrecoverable failure: a rollback
	// that could not truncate, or a background fsync error. Once latched,
	// every further append (and the final close) returns it — the WAL
	// fail-stops rather than risk acknowledging writes it cannot keep.
	failMu  sync.Mutex
	failErr error

	// Interval sync: a background ticker fsyncs when dirty. Guarded by
	// the owning Store's mutex except for the ticker goroutine, which
	// only touches dirtyCh/stopCh.
	dirtyCh chan struct{}
	stopCh  chan struct{}
	doneCh  chan struct{}
}

func openWAL(dir string, policy SyncPolicy, every time.Duration) (*wal, error) {
	path := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Everything already in the file is acknowledged: Open truncates any
	// torn tail before opening the append handle, and rewrites keep only
	// complete records.
	w := &wal{f: f, path: path, policy: policy, good: fi.Size()}
	if policy == SyncInterval {
		w.dirtyCh = make(chan struct{}, 1)
		w.stopCh = make(chan struct{})
		w.doneCh = make(chan struct{})
		go w.syncLoop(every)
	}
	return w, nil
}

// latch records the first unrecoverable failure; later ones are dropped.
func (w *wal) latch(err error) {
	w.failMu.Lock()
	if w.failErr == nil {
		w.failErr = err
	}
	w.failMu.Unlock()
}

// failed returns the latched unrecoverable failure, if any.
func (w *wal) failed() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// syncLoop flushes dirty appends every tick until stopped. A failing
// fsync is latched — the next Append (and the final Close) surfaces it —
// because under interval sync the batches in this window were already
// acknowledged and silence would turn a dying disk into silent loss.
func (w *wal) syncLoop(every time.Duration) {
	defer close(w.doneCh)
	t := time.NewTicker(every)
	defer t.Stop()
	dirty := false
	for {
		select {
		case <-w.dirtyCh:
			dirty = true
		case <-t.C:
			if dirty {
				if err := w.fsync(nil); err != nil {
					w.latch(err)
					return
				}
				dirty = false
			}
		case <-w.stopCh:
			if dirty {
				if err := w.fsync(nil); err != nil {
					w.latch(err)
				}
			}
			return
		}
	}
}

// append writes one framed record. Under SyncAlways it is durable when
// append returns nil. The injector models crashes: "store.wal.append"
// fires before the full frame lands and leaves a torn prefix on disk
// (exactly what a mid-write power cut produces); "store.wal.fsync" fails
// the durability step after the full frame landed.
//
// Every failure path rolls the file back to the end of the last
// acknowledged record before returning. If the failed frame were left
// behind, a surviving process would corrupt the log as it kept serving: a
// torn prefix makes the next recovery truncate every later acknowledged
// record, and a complete-but-unacknowledged frame makes the reused
// sequence number a duplicate that recovery rejects as a gap.
func (w *wal) append(frame []byte, inject *faultinject.Injector) error {
	if err := w.failed(); err != nil {
		return fmt.Errorf("store: wal unusable after earlier failure: %w", err)
	}
	if err := inject.Fire("store.wal.append"); err != nil {
		// Simulate the crash mid-write: a prefix of the frame reaches the
		// file. If the process dies here, recovery truncates the torn tail;
		// if it survives, the rollback below removes it immediately.
		w.f.Write(frame[:len(frame)/2])
		w.rollback()
		return fmt.Errorf("store: wal append: %w", err)
	}
	if _, err := w.f.Write(frame); err != nil {
		w.rollback()
		return fmt.Errorf("store: wal append: %w", err)
	}
	if obs.On() {
		obsWALAppends.Inc()
		obsWALAppendBytes.Add(int64(len(frame)))
	}
	switch w.policy {
	case SyncAlways:
		if err := w.fsync(inject); err != nil {
			// The frame is complete in the file but its durability failed;
			// the store will not acknowledge it and will reuse its sequence
			// number, so the frame must not survive on disk.
			w.rollback()
			return err
		}
	case SyncInterval:
		select {
		case w.dirtyCh <- struct{}{}:
		default:
		}
	}
	w.good += int64(len(frame))
	return nil
}

// rollback truncates the log to the end of the last acknowledged record,
// discarding whatever a failed append left behind. A rollback that cannot
// truncate (or cannot make the truncation durable) latches the error: the
// on-disk log is in an unknown state, so the WAL refuses all further
// appends instead of stacking new records on top of it.
func (w *wal) rollback() {
	if err := w.f.Truncate(w.good); err != nil {
		w.latch(fmt.Errorf("store: wal rollback truncate: %w", err))
		return
	}
	if err := w.f.Sync(); err != nil {
		w.latch(fmt.Errorf("store: wal rollback fsync: %w", err))
		return
	}
	if obs.On() {
		obsWALRollbacks.Inc()
	}
}

func (w *wal) fsync(inject *faultinject.Injector) error {
	if err := inject.Fire("store.wal.fsync"); err != nil {
		if obs.On() {
			obsWALFsyncErrs.Inc()
		}
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	t0 := time.Now()
	if err := w.f.Sync(); err != nil {
		if obs.On() {
			obsWALFsyncErrs.Inc()
		}
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	if obs.On() {
		obsWALFsyncs.Inc()
		obsWALFsyncSec.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// close stops the sync loop, flushes, and releases the handle. Any
// latched background failure — and the final fsync's own error — is
// returned: batches acknowledged under interval sync were only durable if
// these succeeded, and the caller deserves to know they were not.
func (w *wal) close() error {
	if w.policy == SyncInterval {
		close(w.stopCh)
		<-w.doneCh
	}
	err := w.failed()
	if serr := w.fsync(nil); serr != nil && err == nil {
		err = serr
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// abandon releases the WAL's OS resources without flushing anything — the
// in-process stand-in for an abrupt process death, used by crash-recovery
// tests via Store.Abandon. The file is closed before the sync loop stops
// so its final flush cannot run.
func (w *wal) abandon() {
	w.f.Close()
	if w.policy == SyncInterval {
		close(w.stopCh)
		<-w.doneCh
	}
}
