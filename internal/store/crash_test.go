package store

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/graph"
)

// TestCrashRecoveryProperty is the store-level half of the crash-safety
// contract. For every injectable site and every call number at that site,
// it runs a fixed workload against a store with a fault armed, simulates
// the crash by abandoning the store (no Close, so nothing is flushed
// beyond what each operation already made durable), then reopens the
// directory and asserts the recovered state is byte-equivalent to a
// never-crashed oracle at some sequence k with acked ≤ k ≤ attempted:
// every acknowledged batch survived, and nothing past the attempt is
// invented.
func TestCrashRecoveryProperty(t *testing.T) {
	const batches = 6
	// Oracle: corpus states after each seq, from a run that never crashes.
	base := testCorpus(9)
	oracle := make([]*graph.Corpus, batches+1)
	oracle[0] = base
	for i := 0; i < batches; i++ {
		b := testBatch(t, i)
		if i >= 3 {
			b.Removed = []string{fmt.Sprintf("up-%d-1", i-3)}
		}
		oracle[i+1] = applyToCorpus(oracle[i], b)
	}

	sites := []string{"store.wal.append", "store.wal.fsync", "store.snapshot.write", "store.recover.replay"}
	for _, site := range sites {
		for call := 0; call < batches+2; call++ {
			t.Run(fmt.Sprintf("%s/call-%d", site, call), func(t *testing.T) {
				dir := t.TempDir()
				inj := faultinject.New(42, faultinject.Fault{
					Site:  site,
					Err:   errors.New("injected crash"),
					After: call,
					Count: 1,
				})
				st, rec, err := Open(context.Background(), dir, Options{Inject: inj})
				if err != nil {
					t.Fatal(err)
				}
				if rec.Corpus != nil {
					t.Fatal("fresh dir recovered state")
				}
				// Seed snapshot. May be killed by store.snapshot.write.
				crashed := false
				if err := st.WriteSnapshot(base, 0, nil); err != nil {
					crashed = true
				}
				acked := 0
				attempted := 0
				if !crashed {
					for i := 0; i < batches; i++ {
						b := testBatch(t, i)
						if i >= 3 {
							b.Removed = []string{fmt.Sprintf("up-%d-1", i-3)}
						}
						attempted++
						if _, err := st.Append(b); err != nil {
							crashed = true
							break
						}
						acked++
						// Mid-run compaction exercises snapshot writing and
						// WAL folding under injection too.
						if i == 2 {
							if err := st.WriteSnapshot(oracle[acked], 0, nil); err != nil {
								crashed = true
								break
							}
						}
					}
				}
				// Crash: abandon st without Close (releases the directory
				// lock the way a process death would, flushes nothing).
				st.Abandon()

				// Recovery may itself be the injected site; retry without
				// the fault after the first "crash during recovery".
				st2, rec2, err := Open(context.Background(), dir, Options{})
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				defer st2.Close()

				if crashed && site == "store.snapshot.write" && acked == 0 && rec2.Corpus == nil {
					// Crashed before the seed snapshot landed: the durable
					// state is legitimately empty.
					return
				}
				if rec2.Corpus == nil {
					t.Fatal("no corpus recovered")
				}
				got := rec2.Corpus
				for _, b := range rec2.Batches {
					got = applyToCorpus(got, b)
				}
				k := int(rec2.LastSeq())
				if k < acked || k > attempted {
					t.Fatalf("recovered seq %d outside [acked=%d, attempted=%d]", k, acked, attempted)
				}
				sameCorpus(t, got, oracle[k])

				// The recovered store must keep working: append one more
				// batch and verify the sequence continues densely.
				nb := testBatch(t, 99)
				seq, err := st2.Append(nb)
				if err != nil {
					t.Fatal(err)
				}
				if seq != uint64(k+1) {
					t.Fatalf("post-recovery seq = %d, want %d", seq, k+1)
				}
			})
		}
	}
}

// TestCrashDuringRecoveryReplay arms the replay site itself: recovery
// dies mid-replay, then a second recovery (no fault) must still land on
// the full durable state — replay is read-only, so a crash during it
// loses nothing.
func TestCrashDuringRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	base := testCorpus(7)
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(base, 0, nil); err != nil {
		t.Fatal(err)
	}
	oracle := base
	for i := 0; i < 4; i++ {
		b := testBatch(t, i)
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		oracle = applyToCorpus(oracle, b)
	}
	st.Close()

	for call := 0; call < 4; call++ {
		inj := faultinject.New(7, faultinject.Fault{
			Site:  "store.recover.replay",
			Err:   errors.New("injected crash"),
			After: call,
			Count: 1,
		})
		if _, _, err := Open(context.Background(), dir, Options{Inject: inj}); err == nil {
			t.Fatalf("call %d: recovery with armed replay fault succeeded", call)
		}
		st2, rec, err := Open(context.Background(), dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := rec.Corpus
		for _, b := range rec.Batches {
			got = applyToCorpus(got, b)
		}
		sameCorpus(t, got, oracle)
		st2.Close()
	}
}

// TestFailedAppendRollsBack pins the surviving-process contract: a failed
// append (torn write) is truncated away before Append returns, so the
// store keeps accepting appends on a clean log — later acknowledged
// records are never swallowed by a torn prefix at the next recovery, and
// the reused sequence number never becomes an on-disk duplicate.
func TestFailedAppendRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1, faultinject.Fault{
		Site:  "store.wal.append",
		Err:   errors.New("injected crash"),
		After: 2, // first two appends succeed, third tears
		Count: 1,
	})
	st, _ := mustOpen(t, dir, Options{Inject: inj})
	if err := st.WriteSnapshot(testCorpus(5), 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := st.Append(testBatch(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Append(testBatch(t, 2)); err == nil {
		t.Fatal("armed append succeeded")
	}
	// The same process keeps serving: the retried append reuses seq 3 and
	// lands on a log with no torn prefix in the middle.
	seq, err := st.Append(testBatch(t, 2))
	if err != nil {
		t.Fatalf("append after rolled-back failure: %v", err)
	}
	if seq != 3 {
		t.Fatalf("retried append got seq %d, want 3", seq)
	}
	if _, err := st.Append(testBatch(t, 3)); err != nil {
		t.Fatal(err)
	}
	st.Abandon()

	st2, rec := mustOpen(t, dir, Options{})
	defer st2.Close()
	if rec.TailTruncated {
		t.Fatal("rolled-back append still left a torn tail for recovery")
	}
	if len(rec.Batches) != 4 {
		t.Fatalf("recovered %d batches, want 4", len(rec.Batches))
	}
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("recovered batch %d has seq %d", i, b.Seq)
		}
	}
}

// TestFailedFsyncRollsBack pins the complete-frame shape: the frame lands
// in full but its fsync fails, so it must not survive on disk — the store
// reuses the sequence number, and recovery must neither reject the log as
// a duplicate-seq gap nor replay the unacknowledged batch.
func TestFailedFsyncRollsBack(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(1, faultinject.Fault{
		Site:  "store.wal.fsync",
		Err:   errors.New("injected fsync failure"),
		After: 1, // the first append syncs fine, the second append's fsync fails
		Count: 1,
	})
	st, _ := mustOpen(t, dir, Options{Inject: inj})
	if err := st.WriteSnapshot(testCorpus(5), 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(testBatch(t, 0)); err != nil {
		t.Fatal(err)
	}
	failed := testBatch(t, 1)
	if _, err := st.Append(failed); err == nil {
		t.Fatal("armed fsync append succeeded")
	}
	// Seq 2 is reused by the next acknowledged batch; before the rollback
	// fix the failed frame stayed on disk and this wrote a duplicate seq 2
	// that made the next recovery refuse to boot.
	other := testBatch(t, 7)
	seq, err := st.Append(other)
	if err != nil {
		t.Fatalf("append after failed fsync: %v", err)
	}
	if seq != 2 {
		t.Fatalf("append after failed fsync got seq %d, want 2", seq)
	}
	st.Abandon()

	st2, rec := mustOpen(t, dir, Options{})
	defer st2.Close()
	if len(rec.Batches) != 2 {
		t.Fatalf("recovered %d batches, want 2", len(rec.Batches))
	}
	if got := rec.Batches[1].Added[0].Name(); got != other.Added[0].Name() {
		t.Fatalf("seq 2 recovered as %q, want the acknowledged batch %q (not the failed one)", got, other.Added[0].Name())
	}
}
