package store

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/graph"
)

func testCorpus(n int) *graph.Corpus {
	return datagen.ChemicalCorpus(7, n, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 14})
}

func testBatch(t *testing.T, i int) Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(100 + i)))
	var added []*graph.Graph
	for j := 0; j < 2; j++ {
		added = append(added, datagen.Chemical(rng, fmt.Sprintf("up-%d-%d", i, j),
			datagen.ChemicalOptions{MinNodes: 5, MaxNodes: 10}))
	}
	return Batch{Added: added}
}

// applyToCorpus mirrors the batch semantics (removals preserve order,
// additions append) — the oracle the recovered corpus is compared to.
func applyToCorpus(c *graph.Corpus, b Batch) *graph.Corpus {
	rm := make(map[string]bool, len(b.Removed))
	for _, n := range b.Removed {
		rm[n] = true
	}
	out := graph.NewCorpus()
	c.Each(func(_ int, g *graph.Graph) {
		if !rm[g.Name()] {
			out.MustAdd(g)
		}
	})
	for _, g := range b.Added {
		out.MustAdd(g)
	}
	return out
}

// sameCorpus asserts exact equality: same order, same names, same
// node/edge structure (Dump is a full listing).
func sameCorpus(t *testing.T, got, want *graph.Corpus) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("corpus length = %d, want %d", got.Len(), want.Len())
	}
	want.Each(func(i int, wg *graph.Graph) {
		gg := got.Graph(i)
		if gg.Name() != wg.Name() {
			t.Fatalf("graph %d name = %q, want %q", i, gg.Name(), wg.Name())
		}
		if gg.Dump() != wg.Dump() {
			t.Fatalf("graph %q differs after round-trip:\ngot:\n%s\nwant:\n%s", wg.Name(), gg.Dump(), wg.Dump())
		}
	})
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	st, rec, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Release the directory lock at test end; a no-op for stores the test
	// already closed or abandoned.
	t.Cleanup(st.Abandon)
	return st, rec
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(12)
	st, rec := mustOpen(t, dir, Options{})
	if rec.Corpus != nil {
		t.Fatal("fresh directory recovered a corpus")
	}
	epochs := []uint64{3, 0, 7, 1}
	if err := st.WriteSnapshot(c, 4, epochs); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := mustOpen(t, dir, Options{})
	if rec2.Corpus == nil {
		t.Fatal("no corpus recovered")
	}
	sameCorpus(t, rec2.Corpus, c)
	if rec2.Meta.Shards != 4 {
		t.Fatalf("shards = %d, want 4", rec2.Meta.Shards)
	}
	for i, e := range epochs {
		if rec2.Meta.Epochs[i] != e {
			t.Fatalf("epoch[%d] = %d, want %d", i, rec2.Meta.Epochs[i], e)
		}
	}
	if len(rec2.Batches) != 0 {
		t.Fatalf("unexpected WAL suffix: %d batches", len(rec2.Batches))
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	base := testCorpus(10)
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(base, 0, nil); err != nil {
		t.Fatal(err)
	}
	oracle := base
	var batches []Batch
	for i := 0; i < 5; i++ {
		b := testBatch(t, i)
		if i >= 2 {
			// Later batches also remove a graph added earlier.
			b.Removed = []string{fmt.Sprintf("up-%d-0", i-2)}
		}
		seq, err := st.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		batches = append(batches, b)
		oracle = applyToCorpus(oracle, b)
	}
	st.Close()

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Batches) != len(batches) {
		t.Fatalf("replayed %d batches, want %d", len(rec.Batches), len(batches))
	}
	got := rec.Corpus
	for i, b := range rec.Batches {
		if b.Seq != uint64(i+1) {
			t.Fatalf("replayed batch %d has seq %d", i, b.Seq)
		}
		got = applyToCorpus(got, b)
	}
	sameCorpus(t, got, oracle)
	if rec.TailTruncated {
		t.Fatal("clean WAL reported a torn tail")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(testCorpus(6), 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Append(testBatch(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Tear the last record: chop off its final bytes.
	walPath := filepath.Join(dir, walFileName)
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	st1, rec := mustOpen(t, dir, Options{})
	if !rec.TailTruncated {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Batches) != 2 {
		t.Fatalf("replayed %d batches past a torn tail, want 2", len(rec.Batches))
	}
	st1.Close()
	// The truncation must be persistent: a second recovery sees a clean log.
	_, rec2 := mustOpen(t, dir, Options{})
	if rec2.TailTruncated {
		t.Fatal("tail reported torn again after truncation")
	}
	if len(rec2.Batches) != 2 {
		t.Fatalf("second recovery replayed %d batches, want 2", len(rec2.Batches))
	}
}

func TestBitFlipInWALDetected(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(testCorpus(6), 0, nil); err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := 0; i < 4; i++ {
		if _, err := st.Append(testBatch(t, i)); err != nil {
			t.Fatal(err)
		}
		fi, _ := os.Stat(filepath.Join(dir, walFileName))
		offsets = append(offsets, fi.Size())
	}
	st.Close()

	// Flip one bit inside the third record's payload.
	walPath := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	pos := offsets[1] + frameHeaderSize + 3
	data[pos] ^= 0x10
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if !rec.TailTruncated {
		t.Fatal("bit flip not detected")
	}
	// Everything from the corrupted record on is dropped — corrupted data
	// is never replayed, even though record 4 after it was intact.
	if len(rec.Batches) != 2 {
		t.Fatalf("replayed %d batches, want the 2 before the corruption", len(rec.Batches))
	}
}

func TestCorruptSnapshotFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	base := testCorpus(8)
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(base, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Advance and compact so two snapshots exist.
	b := testBatch(t, 0)
	if _, err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	next := applyToCorpus(base, b)
	if err := st.WriteSnapshot(next, 0, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	seqs, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(seqs))
	}
	// Corrupt the newest snapshot with a single bit flip.
	newest := filepath.Join(dir, snapName(seqs[0]))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("SnapshotsSkipped = %d, want 1", rec.SnapshotsSkipped)
	}
	// Fallback: previous snapshot + the WAL record that the corrupt
	// snapshot had folded in — the exact same final state.
	got := rec.Corpus
	for _, rb := range rec.Batches {
		got = applyToCorpus(got, rb)
	}
	sameCorpus(t, got, next)
}

func TestCompactionFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	base := testCorpus(8)
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(base, 0, nil); err != nil {
		t.Fatal(err)
	}
	oracle := base
	for i := 0; i < 4; i++ {
		b := testBatch(t, i)
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		oracle = applyToCorpus(oracle, b)
	}
	if err := st.WriteSnapshot(oracle, 2, []uint64{5, 9}); err != nil {
		t.Fatal(err)
	}
	// Appends continue past the compaction point.
	b := testBatch(t, 9)
	seq, err := st.Append(b)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("post-compaction seq = %d, want 5", seq)
	}
	oracle = applyToCorpus(oracle, b)
	st.Close()

	_, rec := mustOpen(t, dir, Options{})
	if rec.Meta.Seq != 4 || rec.Meta.Shards != 2 || rec.Meta.Epochs[1] != 9 {
		t.Fatalf("recovered meta = %+v", rec.Meta)
	}
	if len(rec.Batches) != 1 || rec.Batches[0].Seq != 5 {
		t.Fatalf("WAL suffix after compaction = %+v", rec.Batches)
	}
	got := applyToCorpus(rec.Corpus, rec.Batches[0])
	sameCorpus(t, got, oracle)
}

// TestSeedRefusesWALWithoutSnapshot: a directory whose snapshot files
// were deleted but whose WAL survived is lost state, not a fresh
// directory — seeding it would stamp the seed at the WAL's last seq, so
// this boot replays the orphaned records but every later boot skips them,
// silently diverging. Seed must fail loudly instead.
func TestSeedRefusesWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.Seed(testCorpus(5)); err != nil {
		t.Fatalf("seeding a fresh directory: %v", err)
	}
	if _, err := st.Append(testBatch(t, 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	seqs, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		if err := os.Remove(filepath.Join(dir, snapName(s))); err != nil {
			t.Fatal(err)
		}
	}

	st2, rec := mustOpen(t, dir, Options{})
	defer st2.Close()
	if rec.Corpus != nil {
		t.Fatal("recovered a corpus with every snapshot deleted")
	}
	if err := st2.Seed(testCorpus(5)); err == nil {
		t.Fatal("seed over orphaned WAL records succeeded")
	}
}

// TestDataDirLockExcludesSecondOpen: the exclusive directory lock makes a
// concurrent second mount (e.g. vqimaintain -compact against a live
// vqiserve) fail fast instead of racing appends over the same WAL.
func TestDataDirLockExcludesSecondOpen(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	defer st.Close()
	if _, _, err := Open(context.Background(), dir, Options{}); err == nil {
		t.Fatal("second Open on a locked data directory succeeded")
	}
	// Close releases the lock; the directory mounts again.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _ := mustOpen(t, dir, Options{})
	st2.Close()
}

// TestAppendWithoutWALHandleErrors: if the post-rewrite WAL re-open ever
// fails the store is left handle-less; Append must return an error, not
// nil-pointer panic.
func TestAppendWithoutWALHandleErrors(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	defer st.Close()
	st.mu.Lock()
	st.w.f.Close()
	st.w = nil
	st.mu.Unlock()
	if _, err := st.Append(testBatch(t, 0)); err == nil {
		t.Fatal("append with no WAL handle succeeded")
	}
}

func TestSyncPolicyParsing(t *testing.T) {
	for _, tc := range []struct {
		in     string
		policy SyncPolicy
		ok     bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"none", SyncNone, true},
		{"250ms", SyncInterval, true},
		{"sometimes", 0, false},
		{"-5s", 0, false},
	} {
		p, _, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q) err = %v", tc.in, err)
		}
		if tc.ok && p != tc.policy {
			t.Fatalf("ParseSyncPolicy(%q) = %v, want %v", tc.in, p, tc.policy)
		}
	}
}

func TestSyncIntervalAppendsSurviveClose(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{Sync: SyncInterval, SyncEvery: 50 * time.Millisecond})
	if err := st.WriteSnapshot(testCorpus(5), 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(testBatch(t, 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Batches) != 1 {
		t.Fatalf("interval-sync append lost: %d batches recovered", len(rec.Batches))
	}
}

func TestEmptyBatchAndNameEdgeCases(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	c := graph.NewCorpus()
	g := graph.New("weird name \x00 \n with // t # tokens")
	g.AddNode("α-label")
	g.AddNode("β")
	g.MustAddEdge(0, 1, "edge label")
	c.MustAdd(g)
	empty := graph.New("no-edges")
	empty.AddNode("solo")
	c.MustAdd(empty)
	zero := graph.New("zero-nodes")
	c.MustAdd(zero)
	if err := st.WriteSnapshot(c, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(Batch{Removed: []string{"no-edges"}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, rec := mustOpen(t, dir, Options{})
	sameCorpus(t, rec.Corpus, c)
	if len(rec.Batches) != 1 || rec.Batches[0].Removed[0] != "no-edges" {
		t.Fatalf("batches = %+v", rec.Batches)
	}
}
