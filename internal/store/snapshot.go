package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Snapshot file layout.
//
// Version 1 (legacy, still readable):
//
//	magic   "VQISNP" + version byte 1 + '\n'        (8 bytes, unframed)
//	HEADER  frame: seq u64, shards u32, epochs shards*u64,
//	               labelCount u32, graphCount u32
//	LABELS  frame: labelCount strings (the interned label table,
//	               first-appearance order)
//	GRAPH   frame per graph: name, node label ids, edges in insertion
//	               order (u, v, label id), CSR row-start offsets
//
// Version 2 (written by this code) keeps the same prefix — magic, HEADER
// (plus a trailing sectionCount u32), LABELS, graph frames — and appends
// the structures that make an O(index) cold boot possible:
//
//	SECTION frame per persisted index section: shard u32, epoch u64,
//	               opaque bytes (gindex's per-shard serialized state)
//	FRAME INDEX frame: per-graph (name, offset u64, length u64) and
//	               per-section (shard u32, epoch u64, offset u64,
//	               length u64) entries; offsets address the frame's
//	               8-byte header from the start of the file, lengths
//	               include it
//	FOOTER  16 raw bytes: frame-index offset u64, CRC32C of those 8
//	               bytes u32, "VQI2"
//
// Every frame is length-prefixed and CRC32C-checksummed (see format.go).
// An eager load reads the file front to back and cross-checks the frame
// index against the byte positions it actually observed; a mapped load
// (Options.Mmap) walks footer → frame index → header/labels/sections and
// never touches graph frames — those are CRC-checked lazily, on first
// hydration of each graph.

const (
	snapMagic     = "VQISNP"
	snapVersion   = 2
	snapVersionV1 = 1
	snapSuffix    = ".vqisnap"
	snapPrefix    = "snap-"

	snapFooterSize  = 16
	snapFooterMagic = "VQI2"
)

var (
	obsSnapWrites      = obs.Default.Counter("store_snapshot_writes_total")
	obsSnapLoads       = obs.Default.Counter("store_snapshot_loads_total")
	obsSnapCorrupt     = obs.Default.Counter("store_snapshot_corrupt_total")
	obsSnapWriteSec    = obs.Default.Histogram("store_snapshot_write_seconds")
	obsSnapMapped      = obs.Default.Counter("store_snapshot_mapped_total")
	obsSectionsLoaded  = obs.Default.Counter("store_snapshot_sections_loaded_total")
	obsSectionsCorrupt = obs.Default.Counter("store_snapshot_sections_corrupt_total")
)

// SnapshotMeta is the index metadata persisted alongside the corpus: the
// shard count and per-shard epochs of the sharded index at snapshot time.
// Shards == 0 means "no index metadata" (e.g. a seed snapshot written
// before any index existed); epochs are then treated as all-zero.
type SnapshotMeta struct {
	Seq    uint64   // last WAL sequence number folded into this snapshot
	Shards int      // sharded-index shard count (0 = unknown)
	Epochs []uint64 // per-shard epochs, len == Shards
}

func (m SnapshotMeta) epochOf(shard int) uint64 {
	if shard >= 0 && shard < len(m.Epochs) {
		return m.Epochs[shard]
	}
	return 0
}

// IndexSection is one persisted per-shard index section recovered from a
// snapshot: the serialized filter/ANN state of shard Shard as of Epoch.
// The store treats Data as opaque; gindex owns the encoding.
type IndexSection struct {
	Shard int
	Epoch uint64
	Data  []byte
}

// snapName returns the file name of the snapshot covering WAL seq.
func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

// parseSnapName extracts the seq from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSnapshots returns the snapshot seqs present in dir, descending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		if seq, ok := parseSnapName(ent.Name()); ok && !ent.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// countingBufWriter tracks the absolute file offset of everything written
// through it and latches the first error, so the snapshot writer can
// record frame positions while streaming and check for failure once.
type countingBufWriter struct {
	w   *bufio.Writer
	off uint64
	err error
}

func (cw *countingBufWriter) write(p []byte) {
	if cw.err != nil {
		return
	}
	n, err := cw.w.Write(p)
	cw.off += uint64(n)
	cw.err = err
}

// writeFrame streams one checksummed frame: header first, then the payload
// straight from the caller's buffer — no per-frame copy of the payload.
func (cw *countingBufWriter) writeFrame(payload []byte) {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	cw.write(hdr[:])
	cw.write(payload)
}

// frameLoc addresses one frame inside a snapshot file: the offset of its
// 8-byte header from the start of the file, and its total length
// (header + payload).
type frameLoc struct {
	off uint64
	n   uint64
}

// writeSnapshotFile writes the corpus + metadata + index sections to dir
// atomically: all frames go to a temporary file, which is fsynced and
// renamed into place, then the directory entry itself is synced. A crash
// at any point leaves either the complete new snapshot or no new snapshot
// — never a partial one under the final name.
//
// Memory stays O(largest graph), not O(corpus): the first pass over the
// corpus only interns labels, and the second pass encodes each graph into
// one reused buffer that is streamed through the bufio.Writer immediately.
func (st *Store) writeSnapshotFile(c *graph.Corpus, meta SnapshotMeta, sections [][]byte) (err error) {
	t0 := time.Now()
	// Pass 1: intern labels corpus-wide in first-appearance order
	// (deterministic for a given corpus). Hydration errors surface here —
	// a corpus with an unreadable graph cannot be snapshotted.
	var labels []string
	labelID := make(map[string]uint32)
	intern := func(s string) uint32 {
		if id, ok := labelID[s]; ok {
			return id
		}
		id := uint32(len(labels))
		labels = append(labels, s)
		labelID[s] = id
		return id
	}
	for i := 0; i < c.Len(); i++ {
		g, herr := c.Hydrate(i)
		if herr != nil {
			return fmt.Errorf("store: snapshot: graph %q: %w", c.Name(i), herr)
		}
		for v := 0; v < g.NumNodes(); v++ {
			intern(g.NodeLabel(v))
		}
		for _, ed := range g.Edges() {
			intern(ed.Label)
		}
	}

	sectionCount := 0
	for _, data := range sections {
		if len(data) > 0 {
			sectionCount++
		}
	}

	var hdr enc
	hdr.u64(meta.Seq)
	hdr.u32(uint32(meta.Shards))
	for s := 0; s < meta.Shards; s++ {
		hdr.u64(meta.epochOf(s))
	}
	hdr.u32(uint32(len(labels)))
	hdr.u32(uint32(c.Len()))
	hdr.u32(uint32(sectionCount))

	var lab enc
	for _, l := range labels {
		lab.str(l)
	}

	final := filepath.Join(st.dir, snapName(meta.Seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	cw := &countingBufWriter{w: bufio.NewWriterSize(f, 1<<20)}
	cw.write([]byte(snapMagic + string(rune(snapVersion)) + "\n"))
	cw.writeFrame(hdr.b)
	// Fault site: a crash mid-snapshot-write. The injected error abandons
	// the temp file after the header landed — the rename never happens, so
	// recovery still sees only complete snapshots.
	if err = st.inject.Fire("store.snapshot.write"); err != nil {
		cw.w.Flush()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	cw.writeFrame(lab.b)

	// Pass 2: stream graph frames, recording each one's byte position for
	// the frame index. The encode buffer is reused across graphs.
	glocs := make([]frameLoc, 0, c.Len())
	var ge enc
	for i := 0; i < c.Len(); i++ {
		g, herr := c.Hydrate(i)
		if herr != nil {
			err = fmt.Errorf("store: snapshot: graph %q: %w", c.Name(i), herr)
			return err
		}
		ge.b = ge.b[:0]
		encodeGraphInterned(&ge, g, intern)
		glocs = append(glocs, frameLoc{off: cw.off, n: frameHeaderSize + uint64(len(ge.b))})
		cw.writeFrame(ge.b)
	}

	// Index sections, one frame each: shard, epoch, opaque payload.
	type secLoc struct {
		shard int
		loc   frameLoc
	}
	slocs := make([]secLoc, 0, sectionCount)
	var se enc
	for shard, data := range sections {
		if len(data) == 0 {
			continue
		}
		se.b = se.b[:0]
		se.u32(uint32(shard))
		se.u64(meta.epochOf(shard))
		se.b = append(se.b, data...)
		slocs = append(slocs, secLoc{shard: shard, loc: frameLoc{off: cw.off, n: frameHeaderSize + uint64(len(se.b))}})
		cw.writeFrame(se.b)
	}

	// Frame index + footer: the mapped boot path reads these two (plus the
	// header and labels) and nothing else.
	frameIndexOff := cw.off
	var fi enc
	fi.u32(uint32(len(glocs)))
	for i, loc := range glocs {
		fi.str(c.Name(i))
		fi.u64(loc.off)
		fi.u64(loc.n)
	}
	fi.u32(uint32(len(slocs)))
	for _, sl := range slocs {
		fi.u32(uint32(sl.shard))
		fi.u64(meta.epochOf(sl.shard))
		fi.u64(sl.loc.off)
		fi.u64(sl.loc.n)
	}
	cw.writeFrame(fi.b)

	var foot [snapFooterSize]byte
	binary.LittleEndian.PutUint64(foot[0:8], frameIndexOff)
	binary.LittleEndian.PutUint32(foot[8:12], crc32.Checksum(foot[0:8], castagnoli))
	copy(foot[12:16], snapFooterMagic)
	cw.write(foot[:])

	if err = cw.err; err != nil {
		return err
	}
	if err = cw.w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(st.dir)
	if obs.On() {
		obsSnapWrites.Inc()
		obsSnapWriteSec.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// loadSnapshotFile reads and validates the snapshot covering seq, eagerly
// decoding every graph. Any checksum or structural failure returns
// ErrCorrupt-wrapped errors. Both format versions are accepted.
func loadSnapshotFile(dir string, seq uint64) (*graph.Corpus, SnapshotMeta, error) {
	var meta SnapshotMeta
	f, err := os.Open(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, meta, err
	}
	defer f.Close()
	r := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	magic := make([]byte, 8)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, meta, fmt.Errorf("%w: snapshot magic: %v", ErrCorrupt, err)
	}
	if string(magic[:6]) != snapMagic || magic[7] != '\n' {
		return nil, meta, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, magic)
	}
	switch magic[6] {
	case snapVersionV1:
		return loadSnapshotV1(r, seq)
	case snapVersion:
		return loadSnapshotV2(r, seq)
	default:
		return nil, meta, fmt.Errorf("store: unsupported snapshot version %d", magic[6])
	}
}

// decodeSnapshotHeader parses the HEADER frame payload shared by both
// versions; v2 carries a trailing section count.
func decodeSnapshotHeader(hdrb []byte, seq uint64, v2 bool) (meta SnapshotMeta, labelCount, graphCount, sectionCount uint32, err error) {
	hd := dec{b: hdrb}
	meta.Seq = hd.u64()
	shards := hd.u32()
	if shards > 1<<20 {
		return meta, 0, 0, 0, fmt.Errorf("%w: shard count %d", ErrCorrupt, shards)
	}
	meta.Shards = int(shards)
	for s := uint32(0); s < shards; s++ {
		meta.Epochs = append(meta.Epochs, hd.u64())
	}
	labelCount = hd.u32()
	graphCount = hd.u32()
	if v2 {
		sectionCount = hd.u32()
	}
	if err := hd.done(); err != nil {
		return meta, 0, 0, 0, fmt.Errorf("snapshot header: %w", err)
	}
	if meta.Seq != seq {
		return meta, 0, 0, 0, fmt.Errorf("%w: snapshot seq %d does not match file name seq %d", ErrCorrupt, meta.Seq, seq)
	}
	return meta, labelCount, graphCount, sectionCount, nil
}

// decodeLabelTable parses the LABELS frame payload.
func decodeLabelTable(labb []byte, labelCount uint32) ([]string, error) {
	ld := dec{b: labb}
	labels := make([]string, labelCount)
	for i := range labels {
		labels[i] = ld.str()
	}
	if err := ld.done(); err != nil {
		return nil, fmt.Errorf("snapshot label table: %w", err)
	}
	return labels, nil
}

// loadSnapshotV1 is the retained legacy reader: header, labels, then graph
// frames straight to EOF.
func loadSnapshotV1(r io.Reader, seq uint64) (*graph.Corpus, SnapshotMeta, error) {
	var meta SnapshotMeta
	hdrb, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot header: %w", err)
	}
	meta, labelCount, graphCount, _, err := decodeSnapshotHeader(hdrb, seq, false)
	if err != nil {
		return nil, meta, err
	}
	labb, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot label table: %w", err)
	}
	labels, err := decodeLabelTable(labb, labelCount)
	if err != nil {
		return nil, meta, err
	}
	c := graph.NewCorpus()
	for i := uint32(0); i < graphCount; i++ {
		if err := readGraphFrame(r, c, labels, i, graphCount); err != nil {
			return nil, meta, err
		}
	}
	// A clean v1 snapshot ends exactly after its last graph frame.
	if _, err := readFrame(r); err != io.EOF {
		return nil, meta, fmt.Errorf("%w: trailing data after %d graphs", ErrCorrupt, graphCount)
	}
	if obs.On() {
		obsSnapLoads.Inc()
	}
	return c, meta, nil
}

// readGraphFrame reads and decodes one graph frame into c.
func readGraphFrame(r io.Reader, c *graph.Corpus, labels []string, i, graphCount uint32) error {
	gb, err := readFrame(r)
	if err != nil {
		return fmt.Errorf("snapshot graph %d/%d: %w", i, graphCount, err)
	}
	g, err := decodeGraphPayload(gb, labels)
	if err != nil {
		return fmt.Errorf("snapshot graph %d/%d: %w", i, graphCount, err)
	}
	if err := c.Add(g); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// decodeGraphPayload decodes one graph frame payload end to end.
func decodeGraphPayload(gb []byte, labels []string) (*graph.Graph, error) {
	gd := dec{b: gb}
	g, err := decodeGraphInterned(&gd, labels)
	if err != nil {
		return nil, err
	}
	if err := gd.done(); err != nil {
		return nil, err
	}
	return g, nil
}

// loadSnapshotV2 eagerly reads a v2 snapshot front to back — graphs are
// decoded and the frame index is cross-checked against the byte positions
// every frame was actually observed at, so a snapshot whose index lies
// about offsets or lengths is rejected here, not discovered at hydration
// time by some later mapped boot. Sections are validated but not returned;
// the eager path rebuilds indexes from the corpus.
func loadSnapshotV2(r *countingReader, seq uint64) (*graph.Corpus, SnapshotMeta, error) {
	var meta SnapshotMeta
	hdrb, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot header: %w", err)
	}
	meta, labelCount, graphCount, sectionCount, err := decodeSnapshotHeader(hdrb, seq, true)
	if err != nil {
		return nil, meta, err
	}
	labb, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot label table: %w", err)
	}
	labels, err := decodeLabelTable(labb, labelCount)
	if err != nil {
		return nil, meta, err
	}
	c := graph.NewCorpus()
	glocs := make([]frameLoc, graphCount)
	for i := uint32(0); i < graphCount; i++ {
		start := uint64(r.n)
		if err := readGraphFrame(r, c, labels, i, graphCount); err != nil {
			return nil, meta, err
		}
		glocs[i] = frameLoc{off: start, n: uint64(r.n) - start}
	}
	type secSeen struct {
		shard uint32
		epoch uint64
		loc   frameLoc
	}
	secs := make([]secSeen, sectionCount)
	for i := uint32(0); i < sectionCount; i++ {
		start := uint64(r.n)
		sb, err := readFrame(r)
		if err != nil {
			return nil, meta, fmt.Errorf("snapshot section %d/%d: %w", i, sectionCount, err)
		}
		sd := dec{b: sb}
		secs[i] = secSeen{shard: sd.u32(), epoch: sd.u64(), loc: frameLoc{off: start, n: uint64(r.n) - start}}
		if sd.err != nil {
			return nil, meta, fmt.Errorf("snapshot section %d/%d: %w", i, sectionCount, sd.err)
		}
	}
	fiOff := uint64(r.n)
	fib, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot frame index: %w", err)
	}
	fd := dec{b: fib}
	if n := fd.u32(); n != graphCount {
		return nil, meta, fmt.Errorf("%w: frame index lists %d graphs, header says %d", ErrCorrupt, n, graphCount)
	}
	for i := uint32(0); i < graphCount; i++ {
		name := fd.str()
		off := fd.u64()
		n := fd.u64()
		if fd.err != nil {
			return nil, meta, fmt.Errorf("snapshot frame index: %w", fd.err)
		}
		if name != c.Name(int(i)) || off != glocs[i].off || n != glocs[i].n {
			return nil, meta, fmt.Errorf("%w: frame index entry %d (%q @%d+%d) does not match graph frame (%q @%d+%d)",
				ErrCorrupt, i, name, off, n, c.Name(int(i)), glocs[i].off, glocs[i].n)
		}
	}
	if n := fd.u32(); n != sectionCount {
		return nil, meta, fmt.Errorf("%w: frame index lists %d sections, header says %d", ErrCorrupt, n, sectionCount)
	}
	for i := uint32(0); i < sectionCount; i++ {
		shard := fd.u32()
		epoch := fd.u64()
		off := fd.u64()
		n := fd.u64()
		if fd.err != nil {
			return nil, meta, fmt.Errorf("snapshot frame index: %w", fd.err)
		}
		if shard != secs[i].shard || epoch != secs[i].epoch || off != secs[i].loc.off || n != secs[i].loc.n {
			return nil, meta, fmt.Errorf("%w: frame index section entry %d does not match section frame", ErrCorrupt, i)
		}
	}
	if err := fd.done(); err != nil {
		return nil, meta, fmt.Errorf("snapshot frame index: %w", err)
	}
	var foot [snapFooterSize]byte
	if _, err := io.ReadFull(r, foot[:]); err != nil {
		return nil, meta, fmt.Errorf("%w: snapshot footer: %v", ErrCorrupt, err)
	}
	if err := checkFooter(foot, fiOff); err != nil {
		return nil, meta, err
	}
	if _, err := readFrame(r); err != io.EOF {
		return nil, meta, fmt.Errorf("%w: trailing data after snapshot footer", ErrCorrupt)
	}
	if obs.On() {
		obsSnapLoads.Inc()
	}
	return c, meta, nil
}

// checkFooter validates the fixed 16-byte footer against the expected
// frame-index offset (pass ^uint64(0) to accept any and extract it).
func checkFooter(foot [snapFooterSize]byte, wantOff uint64) error {
	if string(foot[12:16]) != snapFooterMagic {
		return fmt.Errorf("%w: bad snapshot footer magic %q", ErrCorrupt, foot[12:16])
	}
	if got := crc32.Checksum(foot[0:8], castagnoli); got != binary.LittleEndian.Uint32(foot[8:12]) {
		return fmt.Errorf("%w: snapshot footer checksum mismatch", ErrCorrupt)
	}
	off := binary.LittleEndian.Uint64(foot[0:8])
	if wantOff != ^uint64(0) && off != wantOff {
		return fmt.Errorf("%w: footer frame-index offset %d, actual %d", ErrCorrupt, off, wantOff)
	}
	return nil
}

// writeSnapshotFileV1 writes a version-1 snapshot — the legacy layout with
// no frame index, sections, or footer. Kept for the cross-version tests
// that prove the current reader recovers old snapshots byte-equal.
func writeSnapshotFileV1(dir string, c *graph.Corpus, meta SnapshotMeta) error {
	var labels []string
	labelID := make(map[string]uint32)
	intern := func(s string) uint32 {
		if id, ok := labelID[s]; ok {
			return id
		}
		id := uint32(len(labels))
		labels = append(labels, s)
		labelID[s] = id
		return id
	}
	graphFrames := make([][]byte, 0, c.Len())
	c.Each(func(_ int, g *graph.Graph) {
		var e enc
		encodeGraphInterned(&e, g, intern)
		graphFrames = append(graphFrames, appendFrame(nil, e.b))
	})
	var hdr enc
	hdr.u64(meta.Seq)
	hdr.u32(uint32(meta.Shards))
	for s := 0; s < meta.Shards; s++ {
		hdr.u64(meta.epochOf(s))
	}
	hdr.u32(uint32(len(labels)))
	hdr.u32(uint32(c.Len()))
	var lab enc
	for _, l := range labels {
		lab.str(l)
	}
	out := []byte(snapMagic + string(rune(snapVersionV1)) + "\n")
	out = appendFrame(out, hdr.b)
	out = appendFrame(out, lab.b)
	for _, fr := range graphFrames {
		out = append(out, fr...)
	}
	return os.WriteFile(filepath.Join(dir, snapName(meta.Seq)), out, 0o644)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
