package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Snapshot file layout (version 1):
//
//	magic   "VQISNP" + version byte + '\n'          (8 bytes, unframed)
//	HEADER  frame: seq u64, shards u32, epochs shards*u64,
//	               labelCount u32, graphCount u32
//	LABELS  frame: labelCount strings (the interned label table,
//	               first-appearance order)
//	GRAPH   frame per graph: name, node label ids, edges in insertion
//	               order (u, v, label id), CSR row-start offsets
//
// Every frame is length-prefixed and CRC32C-checksummed (see format.go),
// so a flipped bit or truncated write anywhere makes the snapshot load
// fail cleanly — recovery then falls back to the previous retained
// snapshot rather than serving a corrupted corpus.

const (
	snapMagic   = "VQISNP"
	snapVersion = 1
	snapSuffix  = ".vqisnap"
	snapPrefix  = "snap-"
)

var (
	obsSnapWrites   = obs.Default.Counter("store_snapshot_writes_total")
	obsSnapLoads    = obs.Default.Counter("store_snapshot_loads_total")
	obsSnapCorrupt  = obs.Default.Counter("store_snapshot_corrupt_total")
	obsSnapWriteSec = obs.Default.Histogram("store_snapshot_write_seconds")
)

// SnapshotMeta is the index metadata persisted alongside the corpus: the
// shard count and per-shard epochs of the sharded index at snapshot time.
// Shards == 0 means "no index metadata" (e.g. a seed snapshot written
// before any index existed); epochs are then treated as all-zero.
type SnapshotMeta struct {
	Seq    uint64   // last WAL sequence number folded into this snapshot
	Shards int      // sharded-index shard count (0 = unknown)
	Epochs []uint64 // per-shard epochs, len == Shards
}

// snapName returns the file name of the snapshot covering WAL seq.
func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

// parseSnapName extracts the seq from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSnapshots returns the snapshot seqs present in dir, descending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, ent := range ents {
		if seq, ok := parseSnapName(ent.Name()); ok && !ent.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// writeSnapshotFile writes the corpus + metadata to dir atomically: all
// frames go to a temporary file, which is fsynced and renamed into place,
// then the directory entry itself is synced. A crash at any point leaves
// either the complete new snapshot or no new snapshot — never a partial
// one under the final name.
func (st *Store) writeSnapshotFile(c *graph.Corpus, meta SnapshotMeta) (err error) {
	t0 := time.Now()
	// Intern labels corpus-wide in first-appearance order (deterministic
	// for a given corpus).
	var labels []string
	labelID := make(map[string]uint32)
	intern := func(s string) uint32 {
		if id, ok := labelID[s]; ok {
			return id
		}
		id := uint32(len(labels))
		labels = append(labels, s)
		labelID[s] = id
		return id
	}
	// First pass assigns ids; graph frames are encoded into memory before
	// the label table is written, so the table is complete by then.
	graphFrames := make([][]byte, 0, c.Len())
	c.Each(func(_ int, g *graph.Graph) {
		var e enc
		encodeGraphInterned(&e, g, intern)
		graphFrames = append(graphFrames, appendFrame(nil, e.b))
	})

	var hdr enc
	hdr.u64(meta.Seq)
	hdr.u32(uint32(meta.Shards))
	for s := 0; s < meta.Shards; s++ {
		var ep uint64
		if s < len(meta.Epochs) {
			ep = meta.Epochs[s]
		}
		hdr.u64(ep)
	}
	hdr.u32(uint32(len(labels)))
	hdr.u32(uint32(c.Len()))

	var lab enc
	for _, l := range labels {
		lab.str(l)
	}

	final := filepath.Join(st.dir, snapName(meta.Seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err = w.WriteString(snapMagic + string(rune(snapVersion)) + "\n"); err != nil {
		return err
	}
	if _, err = w.Write(appendFrame(nil, hdr.b)); err != nil {
		return err
	}
	// Fault site: a crash mid-snapshot-write. The injected error abandons
	// the temp file after the header landed — the rename never happens, so
	// recovery still sees only complete snapshots.
	if err = st.inject.Fire("store.snapshot.write"); err != nil {
		w.Flush()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if _, err = w.Write(appendFrame(nil, lab.b)); err != nil {
		return err
	}
	for _, fr := range graphFrames {
		if _, err = w.Write(fr); err != nil {
			return err
		}
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, final); err != nil {
		return err
	}
	syncDir(st.dir)
	if obs.On() {
		obsSnapWrites.Inc()
		obsSnapWriteSec.Observe(time.Since(t0).Seconds())
	}
	return nil
}

// loadSnapshotFile reads and validates the snapshot covering seq. Any
// checksum or structural failure returns ErrCorrupt-wrapped errors.
func loadSnapshotFile(dir string, seq uint64) (*graph.Corpus, SnapshotMeta, error) {
	var meta SnapshotMeta
	f, err := os.Open(filepath.Join(dir, snapName(seq)))
	if err != nil {
		return nil, meta, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, 8)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, meta, fmt.Errorf("%w: snapshot magic: %v", ErrCorrupt, err)
	}
	if string(magic[:6]) != snapMagic || magic[7] != '\n' {
		return nil, meta, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, magic)
	}
	if magic[6] != snapVersion {
		return nil, meta, fmt.Errorf("store: unsupported snapshot version %d", magic[6])
	}
	hdrb, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot header: %w", err)
	}
	hd := dec{b: hdrb}
	meta.Seq = hd.u64()
	shards := hd.u32()
	if shards > 1<<20 {
		return nil, meta, fmt.Errorf("%w: shard count %d", ErrCorrupt, shards)
	}
	meta.Shards = int(shards)
	for s := uint32(0); s < shards; s++ {
		meta.Epochs = append(meta.Epochs, hd.u64())
	}
	labelCount := hd.u32()
	graphCount := hd.u32()
	if err := hd.done(); err != nil {
		return nil, meta, fmt.Errorf("snapshot header: %w", err)
	}
	if meta.Seq != seq {
		return nil, meta, fmt.Errorf("%w: snapshot seq %d does not match file name seq %d", ErrCorrupt, meta.Seq, seq)
	}

	labb, err := readFrame(r)
	if err != nil {
		return nil, meta, fmt.Errorf("snapshot label table: %w", err)
	}
	ld := dec{b: labb}
	labels := make([]string, labelCount)
	for i := range labels {
		labels[i] = ld.str()
	}
	if err := ld.done(); err != nil {
		return nil, meta, fmt.Errorf("snapshot label table: %w", err)
	}

	c := graph.NewCorpus()
	for i := uint32(0); i < graphCount; i++ {
		gb, err := readFrame(r)
		if err != nil {
			return nil, meta, fmt.Errorf("snapshot graph %d/%d: %w", i, graphCount, err)
		}
		gd := dec{b: gb}
		g, err := decodeGraphInterned(&gd, labels)
		if err != nil {
			return nil, meta, fmt.Errorf("snapshot graph %d/%d: %w", i, graphCount, err)
		}
		if err := gd.done(); err != nil {
			return nil, meta, fmt.Errorf("snapshot graph %d/%d: %w", i, graphCount, err)
		}
		if err := c.Add(g); err != nil {
			return nil, meta, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	// A clean snapshot ends exactly after its last graph frame.
	if _, err := readFrame(r); err != io.EOF {
		return nil, meta, fmt.Errorf("%w: trailing data after %d graphs", ErrCorrupt, graphCount)
	}
	if obs.On() {
		obsSnapLoads.Inc()
	}
	return c, meta, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
