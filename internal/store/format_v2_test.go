package store

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

// writeV2 seeds dir with corpus c as a version-2 snapshot carrying the
// given sections, returning the open store.
func writeV2(t *testing.T, dir string, c *graph.Corpus, shards int, epochs []uint64, sections ...[]byte) {
	t.Helper()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(c, shards, epochs, sections...); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

func TestSnapshotV2MmapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(12)
	epochs := []uint64{3, 0, 7, 1}
	secs := [][]byte{[]byte("s0"), []byte("s1"), nil, []byte("s3")}
	writeV2(t, dir, c, 4, epochs, secs...)

	_, rec := mustOpen(t, dir, Options{Mmap: true})
	if rec.Corpus == nil {
		t.Fatal("no corpus recovered")
	}
	if rec.Meta.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", rec.Meta.Shards)
	}
	// Boot must not have touched any graph.
	for i := 0; i < rec.Corpus.Len(); i++ {
		if rec.Corpus.Hydrated(i) {
			t.Fatalf("graph %d hydrated at boot", i)
		}
	}
	// Sections: the nil entry is skipped, the rest round-trip with their
	// shard's epoch.
	if len(rec.Sections) != 3 {
		t.Fatalf("recovered %d sections, want 3", len(rec.Sections))
	}
	for _, s := range rec.Sections {
		if string(s.Data) != string(secs[s.Shard]) {
			t.Fatalf("section %d data = %q, want %q", s.Shard, s.Data, secs[s.Shard])
		}
		if s.Epoch != epochs[s.Shard] {
			t.Fatalf("section %d epoch = %d, want %d", s.Shard, s.Epoch, epochs[s.Shard])
		}
	}
	// Hydration returns the exact original graphs.
	sameCorpus(t, rec.Corpus, c)
}

// TestFrameIndexOffsetsProperty checks, over random corpora of varying
// shapes, that every frame-index entry points at a frame whose payload
// CRC-validates and decodes to the named graph — offsets and lengths are
// exact, not just plausible.
func TestFrameIndexOffsetsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30) // includes the empty corpus
		c := datagen.ChemicalCorpus(int64(trial), n, datagen.ChemicalOptions{
			MinNodes: 2 + rng.Intn(5), MaxNodes: 8 + rng.Intn(20)})
		nsec := rng.Intn(4)
		secs := make([][]byte, nsec)
		epochs := make([]uint64, nsec)
		for i := range secs {
			secs[i] = make([]byte, rng.Intn(64))
			rng.Read(secs[i])
			epochs[i] = rng.Uint64()
		}
		dir := t.TempDir()
		writeV2(t, dir, c, nsec, epochs, secs...)

		data, err := os.ReadFile(filepath.Join(dir, snapName(0)))
		if err != nil {
			t.Fatal(err)
		}
		var foot [snapFooterSize]byte
		copy(foot[:], data[len(data)-snapFooterSize:])
		if err := checkFooter(foot, ^uint64(0)); err != nil {
			t.Fatalf("trial %d: footer: %v", trial, err)
		}
		fiOff := binary.LittleEndian.Uint64(foot[0:8])
		fib, err := frameAt(data, fiOff, uint64(len(data)-snapFooterSize)-fiOff)
		if err != nil {
			t.Fatalf("trial %d: frame index: %v", trial, err)
		}
		// Header/labels to decode graph payloads.
		hdrb, err := frameAtNext(data, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, labelCount, graphCount, sectionCount, err := decodeSnapshotHeader(hdrb, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		labb, err := frameAtNext(data, 8+frameHeaderSize+uint64(len(hdrb)))
		if err != nil {
			t.Fatal(err)
		}
		labels, err := decodeLabelTable(labb, labelCount)
		if err != nil {
			t.Fatal(err)
		}
		if int(graphCount) != c.Len() {
			t.Fatalf("trial %d: header graphCount = %d, want %d", trial, graphCount, c.Len())
		}
		d := dec{b: fib}
		if got := d.u32(); got != graphCount {
			t.Fatalf("trial %d: index graphCount = %d, want %d", trial, got, graphCount)
		}
		for i := uint32(0); i < graphCount; i++ {
			name := d.str()
			off := d.u64()
			length := d.u64()
			payload, err := frameAt(data, off, length)
			if err != nil {
				t.Fatalf("trial %d: graph %q frame: %v", trial, name, err)
			}
			g, err := decodeGraphPayload(payload, labels)
			if err != nil {
				t.Fatalf("trial %d: graph %q decode: %v", trial, name, err)
			}
			if g.Name() != name {
				t.Fatalf("trial %d: frame at %d decodes %q, index says %q", trial, off, g.Name(), name)
			}
			if want := c.Graph(int(i)); g.Dump() != want.Dump() {
				t.Fatalf("trial %d: graph %q content mismatch", trial, name)
			}
		}
		if got := d.u32(); got != sectionCount {
			t.Fatalf("trial %d: index sectionCount = %d, want %d", trial, got, sectionCount)
		}
		for i := uint32(0); i < sectionCount; i++ {
			shard := d.u32()
			_ = d.u64() // epoch
			off := d.u64()
			length := d.u64()
			payload, err := frameAt(data, off, length)
			if err != nil {
				t.Fatalf("trial %d: section %d frame: %v", trial, shard, err)
			}
			sd := dec{b: payload}
			sd.u32()
			sd.u64()
			if string(sd.b) != string(secs[shard]) {
				t.Fatalf("trial %d: section %d payload mismatch", trial, shard)
			}
		}
		if err := d.done(); err != nil {
			t.Fatalf("trial %d: trailing frame-index bytes: %v", trial, err)
		}

		// Both readers agree with the original corpus.
		ec, _, err := loadSnapshotFile(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameCorpus(t, ec, c)
		mc, _, _, _, err := loadSnapshotMapped(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameCorpus(t, mc, c)
	}
}

// TestV2ReaderRecoversV1Snapshot: the previous on-disk generation loads
// through both the eager path and the mmap path (which transparently
// falls back to the eager v1 reader), byte-equal to the original corpus.
func TestV2ReaderRecoversV1Snapshot(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(9)
	meta := SnapshotMeta{Seq: 0, Shards: 3, Epochs: []uint64{1, 2, 3}}
	if err := writeSnapshotFileV1(dir, c, meta); err != nil {
		t.Fatal(err)
	}
	for _, mmap := range []bool{false, true} {
		st, rec := mustOpen(t, dir, Options{Mmap: mmap})
		if rec.Corpus == nil {
			t.Fatalf("mmap=%v: no corpus recovered from v1 snapshot", mmap)
		}
		if rec.Mapped {
			t.Fatalf("mmap=%v: v1 snapshot claims to be mapped", mmap)
		}
		if len(rec.Sections) != 0 {
			t.Fatalf("mmap=%v: v1 snapshot produced %d sections", mmap, len(rec.Sections))
		}
		if rec.Meta.Shards != 3 || len(rec.Meta.Epochs) != 3 {
			t.Fatalf("mmap=%v: meta not recovered: %+v", mmap, rec.Meta)
		}
		sameCorpus(t, rec.Corpus, c)
		st.Abandon()
	}
}

// locateGraphFrame parses the snapshot's frame index and returns the
// byte range of graph i's frame.
func locateGraphFrame(t *testing.T, data []byte, i int) (off, length uint64, name string) {
	t.Helper()
	fiOff := binary.LittleEndian.Uint64(data[len(data)-snapFooterSize:])
	fib, err := frameAt(data, fiOff, uint64(len(data)-snapFooterSize)-fiOff)
	if err != nil {
		t.Fatal(err)
	}
	d := dec{b: fib}
	n := d.u32()
	if uint32(i) >= n {
		t.Fatalf("graph %d out of range (%d graphs)", i, n)
	}
	for j := uint32(0); j <= uint32(i); j++ {
		name = d.str()
		off = d.u64()
		length = d.u64()
	}
	if d.err != nil {
		t.Fatal(d.err)
	}
	return off, length, name
}

func TestBitFlippedGraphFrameErrCorruptAtFirstTouch(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(8)
	writeV2(t, dir, c, 0, nil)

	path := filepath.Join(dir, snapName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	victim := 5
	off, length, name := locateGraphFrame(t, data, victim)
	// Flip one bit in the payload (past the 8-byte frame header).
	data[off+frameHeaderSize+length/3] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{Mmap: true})
	if rec.Corpus == nil {
		t.Fatal("boot rejected snapshot; a corrupt graph frame must defer to first touch")
	}
	if rec.SnapshotsSkipped != 0 {
		t.Fatalf("SnapshotsSkipped = %d, want 0", rec.SnapshotsSkipped)
	}
	// The corrupt graph errors with ErrCorrupt at first touch — and stays
	// errored (latched), never returning a wrong graph.
	for range [2]int{} {
		_, herr := rec.Corpus.Hydrate(victim)
		if !errors.Is(herr, ErrCorrupt) {
			t.Fatalf("Hydrate(%q) = %v, want ErrCorrupt", name, herr)
		}
	}
	// Every other graph is intact.
	for i := 0; i < rec.Corpus.Len(); i++ {
		if i == victim {
			continue
		}
		g, herr := rec.Corpus.Hydrate(i)
		if herr != nil {
			t.Fatalf("graph %d: %v", i, herr)
		}
		if want := c.Graph(i); g.Dump() != want.Dump() {
			t.Fatalf("graph %d content mismatch", i)
		}
	}
}

func TestCorruptSectionSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(6)
	secs := [][]byte{[]byte("alpha-section"), []byte("beta-section")}
	writeV2(t, dir, c, 2, []uint64{4, 9}, secs...)

	path := filepath.Join(dir, snapName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate section 0's frame via the frame index and flip a payload bit.
	fiOff := binary.LittleEndian.Uint64(data[len(data)-snapFooterSize:])
	fib, err := frameAt(data, fiOff, uint64(len(data)-snapFooterSize)-fiOff)
	if err != nil {
		t.Fatal(err)
	}
	d := dec{b: fib}
	n := d.u32()
	for j := uint32(0); j < n; j++ {
		d.str()
		d.u64()
		d.u64()
	}
	if got := d.u32(); got != 2 {
		t.Fatalf("sectionCount = %d, want 2", got)
	}
	d.u32() // shard
	d.u64() // epoch
	soff := d.u64()
	d.u64()
	if d.err != nil {
		t.Fatal(d.err)
	}
	data[soff+frameHeaderSize+3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{Mmap: true})
	if rec.Corpus == nil || rec.SnapshotsSkipped != 0 {
		t.Fatal("corrupt section must degrade, not reject the snapshot")
	}
	if len(rec.Sections) != 1 {
		t.Fatalf("recovered %d sections, want 1 (the intact one)", len(rec.Sections))
	}
	if rec.Sections[0].Shard != 1 || string(rec.Sections[0].Data) != "beta-section" {
		t.Fatalf("surviving section = %+v, want shard 1", rec.Sections[0])
	}
	sameCorpus(t, rec.Corpus, c)
}

func TestCorruptFrameIndexFallsBackToPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(5)
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(c, 0, nil); err != nil {
		t.Fatal(err)
	}
	b := testBatch(t, 1)
	if _, err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	c2 := applyToCorpus(c, b)
	if err := st.WriteSnapshot(c2, 0, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Corrupt the newest snapshot's frame index.
	path := filepath.Join(dir, snapName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fiOff := binary.LittleEndian.Uint64(data[len(data)-snapFooterSize:])
	data[fiOff+frameHeaderSize+1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{Mmap: true})
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("SnapshotsSkipped = %d, want 1", rec.SnapshotsSkipped)
	}
	// Fallback snapshot at seq 0 + WAL suffix replay reconstructs c2.
	got := rec.Corpus
	for _, b := range rec.Batches {
		got, err = ApplyToCorpus(got, b)
		if err != nil {
			t.Fatal(err)
		}
	}
	sameCorpus(t, got, c2)
}

func TestCompactPrunesSupersededSnapshotsAndTmp(t *testing.T) {
	dir := t.TempDir()
	c := testCorpus(6)
	st, _ := mustOpen(t, dir, Options{})
	if err := st.WriteSnapshot(c, 0, nil); err != nil {
		t.Fatal(err)
	}
	cur := c
	for i := 0; i < 3; i++ {
		b := testBatch(t, i)
		if _, err := st.Append(b); err != nil {
			t.Fatal(err)
		}
		cur = applyToCorpus(cur, b)
		if err := st.WriteSnapshot(cur, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Plant a stale tmp file (a crashed mid-write leftover).
	if err := os.WriteFile(filepath.Join(dir, "snap-junk.vqisnap.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	b := testBatch(t, 9)
	if _, err := st.Append(b); err != nil {
		t.Fatal(err)
	}
	cur = applyToCorpus(cur, b)
	pr, err := st.Compact(cur, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.SnapshotWritten {
		t.Fatal("Compact did not write a snapshot")
	}
	if pr.TmpFilesRemoved != 1 {
		t.Fatalf("TmpFilesRemoved = %d, want 1", pr.TmpFilesRemoved)
	}
	if pr.SnapshotsRemoved == 0 || pr.SnapshotBytesReclaimed == 0 {
		t.Fatalf("no superseded snapshots pruned: %+v", pr)
	}
	seqs, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("%d snapshots retained, want 2 (current + fallback): %v", len(seqs), seqs)
	}
	// A second pass with nothing new still succeeds and writes nothing.
	pr2, err := st.Compact(cur, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pr2.SnapshotWritten {
		t.Fatal("second Compact rewrote an existing snapshot")
	}
	st.Close()

	// Recovery still works after pruning.
	_, rec := mustOpen(t, dir, Options{})
	sameCorpus(t, rec.Corpus, cur)
}
