//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// lockDataDir takes the exclusive advisory lock on dir's LOCK file,
// failing fast (no blocking) when another process holds it. flock locks
// belong to the open file description, so two Opens conflict even within
// one process, and the kernel releases the lock automatically when the
// holder dies — a crashed server never wedges its data directory.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(lockFilePath(dir), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data directory %s is locked by another process (a live vqiserve, or a concurrent vqimaintain/vqibuild): %w", dir, err)
	}
	return f, nil
}
