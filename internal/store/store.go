package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Options configures a Store.
type Options struct {
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync interval under SyncInterval.
	SyncEvery time.Duration
	// Mmap boots from the snapshot's index structures instead of decoding
	// the corpus: the file is mapped read-only (syscall.Mmap on unix, a
	// plain read elsewhere), Recovery.Corpus hydrates graphs lazily from
	// their mapped frames on first touch, and persisted per-shard index
	// sections are surfaced in Recovery.Sections. Version-1 snapshots fall
	// back to the eager load transparently.
	Mmap bool
	// Inject is an optional fault injector armed by robustness tests at
	// the sites store.wal.append, store.wal.fsync, store.snapshot.write,
	// and store.recover.replay. nil in production.
	Inject *faultinject.Injector
}

// Recovery is what Open reconstructed from the data directory.
type Recovery struct {
	// Corpus is the newest valid snapshot's corpus, or nil when the
	// directory holds no snapshot (a fresh directory awaiting a seed).
	// Under Options.Mmap it is lazy: graphs decode from the mapped
	// snapshot on first touch, and a corrupt frame surfaces there as
	// ErrCorrupt instead of failing the boot.
	Corpus *graph.Corpus
	// Meta is the snapshot's index metadata (shard count + epochs).
	Meta SnapshotMeta
	// Batches is the WAL suffix to replay: every durable record with
	// seq > Meta.Seq, in sequence order. The caller replays them through
	// its index-maintenance path (gindex.ApplyBatch).
	Batches []Batch
	// Sections are the persisted per-shard index sections recovered from
	// the snapshot, surfaced only under Options.Mmap (the eager path
	// rebuilds indexes from the decoded corpus anyway). Corrupt sections
	// are dropped here; callers rebuild those shards.
	Sections []IndexSection
	// Mapped reports that the corpus really is backed by an OS mapping
	// (false on the non-unix read fallback and for v1 snapshots).
	Mapped bool
	// TailTruncated reports that a torn or corrupt WAL tail was detected
	// by checksum and cut at the last valid record.
	TailTruncated bool
	// SnapshotsSkipped counts newer snapshots that failed validation and
	// were passed over for an older durable one.
	SnapshotsSkipped int
}

// LastSeq returns the sequence number of the recovered state: the
// snapshot's seq when no WAL records follow it.
func (r *Recovery) LastSeq() uint64 {
	if n := len(r.Batches); n > 0 {
		return r.Batches[n-1].Seq
	}
	return r.Meta.Seq
}

// Store is the durable home of a corpus: snapshots plus a write-ahead
// log in one directory. Safe for concurrent use; appends serialize.
type Store struct {
	dir       string
	inject    *faultinject.Injector
	policy    SyncPolicy
	syncEvery time.Duration
	lock      *os.File // exclusive flock on <dir>/LOCK, held for the store's lifetime

	mu      sync.Mutex
	w       *wal   // nil after a failed WAL rotation; Append then errors
	lastSeq uint64 // highest sequence number ever made durable
	closed  bool
}

// Boot-phase timings, exported as gauges so the last boot's cost is
// scrapeable from /metrics: how long snapshot validation (or mapping)
// took, and how long the WAL scan took.
var (
	obsBootValidateSec = obs.Default.Gauge("store_boot_snapshot_validate_seconds")
	obsBootReplaySec   = obs.Default.Gauge("store_boot_wal_replay_seconds")
)

// lockFileName is the advisory-lock file guarding a data directory: one
// Store (server, compactor, or seeder) at a time. The file itself is
// never removed — only its lock is held and released.
const lockFileName = "LOCK"

func lockFilePath(dir string) string { return filepath.Join(dir, lockFileName) }

// Open mounts a data directory (creating it if needed) and recovers its
// durable state: the newest snapshot that validates, with corrupted ones
// skipped, and the WAL suffix past it, with any torn tail truncated at
// the first invalid record. The returned Store continues the sequence
// numbering where the recovered state ends.
//
// Open takes an exclusive lock on the directory and fails fast if another
// process holds it — a compaction (vqimaintain -compact) can never race a
// live server's appends over the same WAL. The lock is released by Close
// or, if the process dies, by the kernel.
func Open(ctx context.Context, dir string, opts Options) (st *Store, rec *Recovery, err error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if opts.Sync == SyncInterval && opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if err != nil {
			lock.Close()
		}
	}()
	st = &Store{dir: dir, inject: opts.Inject, policy: opts.Sync, syncEvery: opts.SyncEvery, lock: lock}
	rec = &Recovery{}

	// Stage 1: newest valid snapshot. Corrupt snapshots (bit flips,
	// partial writes that somehow reached the final name) are detected by
	// frame checksums and skipped in favor of the previous retained one.
	// Under Options.Mmap the snapshot is validated by header + frame index
	// + sections only and the corpus comes back lazy.
	t0 := time.Now()
	spanName := "store.recover.snapshot"
	if opts.Mmap {
		spanName = "store.recover.map"
	}
	_, span := obs.StartSpan(ctx, spanName)
	seqs, err := listSnapshots(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, seq := range seqs {
		var (
			c    *graph.Corpus
			meta SnapshotMeta
			lerr error
		)
		if opts.Mmap {
			c, meta, rec.Sections, rec.Mapped, lerr = loadSnapshotMapped(dir, seq)
		} else {
			c, meta, lerr = loadSnapshotFile(dir, seq)
		}
		if lerr != nil {
			if obs.On() {
				obsSnapCorrupt.Inc()
			}
			rec.SnapshotsSkipped++
			rec.Sections, rec.Mapped = nil, false
			continue
		}
		rec.Corpus = c
		rec.Meta = meta
		break
	}
	span.End()
	if obs.On() {
		obsBootValidateSec.Set(time.Since(t0).Seconds())
	}
	if rec.Corpus == nil && rec.SnapshotsSkipped > 0 {
		return nil, nil, fmt.Errorf("store: all %d snapshots in %s are corrupt", rec.SnapshotsSkipped, dir)
	}

	// Stage 2: WAL scan + torn-tail truncation + suffix selection.
	t0 = time.Now()
	_, span = obs.StartSpan(ctx, "store.recover.replay")
	walPath := filepath.Join(dir, walFileName)
	records, validEnd, torn, err := scanWAL(walPath, opts.Inject)
	span.End()
	if obs.On() {
		obsBootReplaySec.Set(time.Since(t0).Seconds())
	}
	if err != nil {
		return nil, nil, err
	}
	if torn {
		if terr := os.Truncate(walPath, validEnd); terr != nil {
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", terr)
		}
		rec.TailTruncated = true
		if obs.On() {
			obsWALTornTails.Inc()
		}
	}
	st.lastSeq = rec.Meta.Seq
	for _, b := range records {
		if b.Seq <= rec.Meta.Seq {
			// Already folded into the snapshot; validated but not replayed.
			continue
		}
		if b.Seq != st.maxSeq(rec)+1 {
			return nil, nil, fmt.Errorf("store: WAL sequence gap: snapshot covers seq %d, next record is seq %d",
				st.maxSeq(rec), b.Seq)
		}
		rec.Batches = append(rec.Batches, b)
	}
	if n := len(records); n > 0 && records[n-1].Seq > st.lastSeq {
		st.lastSeq = records[n-1].Seq
	}

	// Stage 3: open the append handle; new records continue the sequence.
	st.w, err = openWAL(dir, opts.Sync, opts.SyncEvery)
	if err != nil {
		return nil, nil, err
	}
	return st, rec, nil
}

// maxSeq is the highest seq currently accounted for in rec.
func (st *Store) maxSeq(rec *Recovery) uint64 { return rec.LastSeq() }

// Dir returns the data directory.
func (st *Store) Dir() string { return st.dir }

// LastSeq returns the highest durable sequence number.
func (st *Store) LastSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastSeq
}

// Append durably logs one batch and returns its sequence number. Under
// SyncAlways the batch has reached stable storage when Append returns
// nil — the caller may acknowledge it. On error the batch MUST NOT be
// applied and is no longer on disk either: the failed frame is rolled
// back (truncated away) before Append returns, so the store keeps
// accepting appends with the log exactly as the last acknowledgement left
// it. If the rollback itself fails the store fail-stops — every further
// Append returns the latched error.
func (st *Store) Append(b Batch) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, fmt.Errorf("store: append on closed store")
	}
	if st.w == nil {
		return 0, fmt.Errorf("store: WAL unavailable after a failed rotation; restart to recover")
	}
	seq := st.lastSeq + 1
	frame := appendFrame(nil, encodeBatch(seq, b))
	if err := st.w.append(frame, st.inject); err != nil {
		return 0, err
	}
	st.lastSeq = seq
	return seq, nil
}

// Seed writes the initial snapshot into a directory that recovered no
// snapshot. It refuses when the directory nevertheless holds WAL records:
// that state means snapshot files were deleted or lost, and stamping a
// fresh seed at the WAL's last sequence number would silently diverge —
// this boot would replay the orphaned records onto the seed while every
// later boot skips them as "already folded in".
func (st *Store) Seed(c *graph.Corpus) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("store: seed on closed store")
	}
	if st.lastSeq != 0 {
		return fmt.Errorf("store: refusing to seed %s: it holds WAL records through seq %d but no snapshot (snapshot files deleted?); restore a snapshot or clear the directory", st.dir, st.lastSeq)
	}
	_, err := st.writeSnapshotLocked(c, 0, nil, nil)
	return err
}

// PruneReport accounts what one snapshot/compaction pass reclaimed.
type PruneReport struct {
	// SnapshotWritten reports that a new snapshot file was created (false
	// when one already covered the current sequence number — the pass then
	// only prunes).
	SnapshotWritten bool
	// SnapshotsRemoved / SnapshotBytesReclaimed cover superseded snapshot
	// files beyond the newest one plus its single retained fallback.
	SnapshotsRemoved       int
	SnapshotBytesReclaimed int64
	// TmpFilesRemoved counts stale temporary files (crashed mid-write
	// leftovers) deleted from the directory.
	TmpFilesRemoved int
	// WALRecordsFolded / WALBytesReclaimed cover write-ahead-log records
	// already covered by the retained snapshots and dropped by the
	// rewrite.
	WALRecordsFolded  int
	WALBytesReclaimed int64
}

// WriteSnapshot persists a full corpus image covering every record up to
// and including the store's current last sequence number, then prunes:
// the previous snapshot is retained as the corruption fallback, older
// ones are deleted, and the WAL is rewritten (atomically, via rename) to
// keep only records newer than the retained fallback — the "fold the WAL
// into a snapshot" compaction step. sections, when given, are the
// serialized per-shard index sections (indexed by shard; nil/empty
// entries are skipped) persisted for the mmap boot path.
func (st *Store) WriteSnapshot(c *graph.Corpus, shards int, epochs []uint64, sections ...[]byte) error {
	_, err := st.Compact(c, shards, epochs, sections...)
	return err
}

// Compact is WriteSnapshot plus accounting: it returns what the pass
// wrote and reclaimed. Unlike earlier revisions, a pass whose snapshot
// already exists still prunes — long-lived data directories stop growing
// without bound even when nothing new needs folding.
func (st *Store) Compact(c *graph.Corpus, shards int, epochs []uint64, sections ...[]byte) (PruneReport, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return PruneReport{}, fmt.Errorf("store: snapshot on closed store")
	}
	return st.writeSnapshotLocked(c, shards, epochs, sections)
}

func (st *Store) writeSnapshotLocked(c *graph.Corpus, shards int, epochs []uint64, sections [][]byte) (PruneReport, error) {
	var pr PruneReport
	meta := SnapshotMeta{Seq: st.lastSeq, Shards: shards, Epochs: epochs}
	prev, err := listSnapshots(st.dir)
	if err != nil {
		return pr, err
	}
	if len(prev) == 0 || prev[0] != meta.Seq {
		if err := st.writeSnapshotFile(c, meta, sections); err != nil {
			return pr, err
		}
		pr.SnapshotWritten = true
		prev = append([]uint64{meta.Seq}, prev...)
	}
	// Retention: the newest snapshot plus one fallback. Everything older
	// is superseded — recovery never reads past the first valid snapshot —
	// so it is deleted and accounted.
	var keepSeq uint64
	if len(prev) > 1 {
		keepSeq = prev[1]
	}
	if len(prev) > 2 {
		for _, old := range prev[2:] {
			path := filepath.Join(st.dir, snapName(old))
			if fi, err := os.Stat(path); err == nil {
				pr.SnapshotBytesReclaimed += fi.Size()
			}
			if os.Remove(path) == nil {
				pr.SnapshotsRemoved++
			}
		}
	}
	pr.TmpFilesRemoved = st.removeStaleTmpLocked()
	// Fold: drop WAL records covered by both retained snapshots.
	folded, reclaimed, err := st.truncateWALLocked(keepSeq)
	pr.WALRecordsFolded, pr.WALBytesReclaimed = folded, reclaimed
	return pr, err
}

// removeStaleTmpLocked deletes leftover *.tmp files (crashed mid-write
// snapshots or WAL rewrites). Safe under st.mu: every live tmp writer in
// this process also holds st.mu, and the directory lock excludes other
// processes.
func (st *Store) removeStaleTmpLocked() int {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		if os.Remove(filepath.Join(st.dir, ent.Name())) == nil {
			removed++
		}
	}
	return removed
}

// truncateWALLocked rewrites the WAL keeping only records with
// seq > keep, swapping the new file in atomically via rename. The append
// handle is re-opened on the new file. Callers hold st.mu. Returns how
// many records were dropped and how many bytes the file shrank by.
func (st *Store) truncateWALLocked(keep uint64) (folded int, reclaimed int64, err error) {
	path := filepath.Join(st.dir, walFileName)
	records, _, _, err := scanWAL(path, nil)
	if err != nil {
		return 0, 0, err
	}
	var out []byte
	for _, b := range records {
		if b.Seq > keep {
			out = appendFrame(out, encodeBatch(b.Seq, b))
		} else {
			folded++
		}
	}
	if fi, serr := os.Stat(path); serr == nil {
		reclaimed = fi.Size() - int64(len(out))
		if reclaimed < 0 {
			reclaimed = 0
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return 0, 0, err
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	// Swap under the old handle, then re-open appends on the new file. The
	// old handle is useless either way once the rename lands (it points at
	// the unlinked inode), so if the re-open fails the store is left with
	// no WAL handle and Append reports that instead of panicking.
	old := st.w
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	syncDir(st.dir)
	old.close()
	st.w, err = openWAL(st.dir, st.policy, st.syncEvery)
	if err != nil {
		st.w = nil
		return folded, reclaimed, fmt.Errorf("store: re-opening WAL after rewrite: %w", err)
	}
	return folded, reclaimed, nil
}

// Close flushes and releases the WAL handle and the directory lock. It
// returns any failure the WAL latched while running (e.g. a background
// fsync error under interval sync).
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	var err error
	if st.w != nil {
		err = st.w.close()
	}
	if st.lock != nil {
		if cerr := st.lock.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Abandon simulates an abrupt process death for crash-recovery tests: it
// releases the store's OS resources — the WAL handle and the directory
// lock — without flushing anything, leaving the directory exactly as a
// kill -9 would. Production code uses Close.
func (st *Store) Abandon() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	if st.w != nil {
		st.w.abandon()
	}
	if st.lock != nil {
		st.lock.Close()
	}
}
