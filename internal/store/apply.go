package store

import (
	"fmt"

	"repro/internal/graph"
)

// ApplyToCorpus returns a new corpus with b applied under the MIDAS batch
// shape: removals first (survivors keep their relative order), then
// additions appended in batch order. The input corpus is not mutated —
// callers running read-copy-update serving keep the old corpus valid for
// in-flight readers. Errors mirror gindex.ValidateBatch: a missing
// removal or duplicate addition is a corrupt or misdirected record, not
// something to paper over during replay.
func ApplyToCorpus(c *graph.Corpus, b Batch) (*graph.Corpus, error) {
	rm := make(map[string]bool, len(b.Removed))
	for _, name := range b.Removed {
		if !c.Has(name) {
			return nil, fmt.Errorf("store: batch seq %d removes %q which is not in the corpus", b.Seq, name)
		}
		if rm[name] {
			return nil, fmt.Errorf("store: batch seq %d removes %q twice", b.Seq, name)
		}
		rm[name] = true
	}
	// Survivors are adopted, not copied: a lazy (mmap-backed) corpus stays
	// lazy through replay, and hydration state is shared with the input.
	out := graph.NewCorpus()
	c.EachName(func(i int, name string) {
		if !rm[name] {
			out.MustAdopt(c, i)
		}
	})
	for _, g := range b.Added {
		if err := out.Add(g); err != nil {
			return nil, fmt.Errorf("store: batch seq %d: %v", b.Seq, err)
		}
	}
	return out, nil
}
