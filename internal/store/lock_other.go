//go:build !unix

package store

import "os"

// lockDataDir on platforms without flock degrades to creating the LOCK
// file with no advisory locking: single-process safety only.
func lockDataDir(dir string) (*os.File, error) {
	return os.OpenFile(lockFilePath(dir), os.O_CREATE|os.O_RDWR, 0o644)
}
