//go:build !unix

package store

import "os"

// mapFile on platforms without syscall.Mmap reports "no mapping" so the
// caller falls back to reading the file into memory. Boot is still
// O(index) in work — only residency differs — and the format, lazy
// hydration, and section restore behave identically.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	return nil, false, nil
}

// unmapFile matches the unix seam; nothing is ever mapped here.
func unmapFile(data []byte) error { return nil }
