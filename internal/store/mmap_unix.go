//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps f read-only into memory. mapped reports whether the bytes
// are a real mapping (and must eventually go back through unmapFile) or a
// plain read. On platforms — or filesystems — where mmap fails, the caller
// falls back to reading the file.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size <= 0 {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// unmapFile releases a mapping created by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
