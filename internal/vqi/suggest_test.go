package vqi

import (
	"testing"

	"repro/internal/graph"
)

func TestSuggestEmptyQuerySuggestsEverythingCheapestFirst(t *testing.T) {
	spec, _ := BuildManual(PresetChemistry, corpus())
	s := NewSession(spec, DataSource{})
	sugs, err := s.Suggest(0)
	if err != nil {
		t.Fatal(err)
	}
	// All panel entries with ≥1 edge qualify against the empty query.
	want := len(spec.Patterns.Basic) + len(spec.Patterns.Canned)
	if len(sugs) != want {
		t.Fatalf("suggestions = %d, want %d", len(sugs), want)
	}
	for i := 1; i < len(sugs); i++ {
		if sugs[i].NewEdges < sugs[i-1].NewEdges {
			t.Fatal("suggestions not ordered by step size")
		}
	}
	if sugs[0].NewEdges != 1 {
		t.Fatalf("cheapest suggestion has %d new edges, want 1 (the basic edge)", sugs[0].NewEdges)
	}
}

func TestSuggestContinuesPartialQuery(t *testing.T) {
	spec, _ := BuildManual(PresetChemistry, corpus())
	s := NewSession(spec, DataSource{})
	// Partial query: two aromatic-bonded carbons — a benzene fragment.
	a := s.AddNode("C")
	b := s.AddNode("C")
	if err := s.AddEdge(a, b, "a"); err != nil {
		t.Fatal(err)
	}
	sugs, err := s.Suggest(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions for benzene fragment")
	}
	foundBenzene := false
	for _, sg := range sugs {
		if sg.Pattern.Name == "benzene" {
			foundBenzene = true
		}
		// Every suggestion must actually contain the fragment.
		pg, _ := sg.Pattern.PatternGraph()
		if pg.NumEdges() <= 1 {
			t.Fatal("suggestion does not extend the query")
		}
	}
	if !foundBenzene {
		t.Fatal("benzene not suggested for an aromatic C-C fragment")
	}
	// A nitrogen-only query must NOT suggest benzene (no N in the ring).
	s2 := NewSession(spec, DataSource{})
	n1 := s2.AddNode("N")
	n2 := s2.AddNode("N")
	s2.AddEdge(n1, n2, "s")
	sugs2, err := s2.Suggest(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range sugs2 {
		if sg.Pattern.Name == "benzene" {
			t.Fatal("benzene suggested for an N-N fragment")
		}
	}
}

func TestSuggestLimitAndStampRoundTrip(t *testing.T) {
	spec := corpusSpec(t)
	s := NewSession(spec, DataSource{})
	sugs, err := s.Suggest(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) > 2 {
		t.Fatalf("limit ignored: %d", len(sugs))
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions at all")
	}
	// The suggested index is stampable.
	if _, err := s.StampPattern(sugs[0].PatternIndex); err != nil {
		t.Fatalf("suggested index not stampable: %v", err)
	}
}

func TestSuggestForSpec(t *testing.T) {
	spec, _ := BuildManual(PresetChemistry, corpus())
	q := graph.New("partial")
	q.AddNode("C")
	q.AddNode("O")
	q.MustAddEdge(0, 1, "d")
	sugs, err := SuggestForSpec(spec, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The carbonyl chain contains C=O; it must be among the suggestions.
	found := false
	for _, sg := range sugs {
		if sg.Pattern.Name == "carbonyl-chain" {
			found = true
		}
	}
	if !found {
		t.Fatalf("carbonyl-chain not suggested for a C=O fragment: %+v", sugs)
	}
}
