package vqi

import (
	"context"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/pattern"
)

func TestRunCtxCanceledTruncates(t *testing.T) {
	corpus := datagen.ChemicalCorpus(2, 20, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	spec, _, err := BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, withIndex := range []bool{false, true} {
		src := DataSource{Corpus: corpus}
		if withIndex {
			src.Index = gindex.Build(corpus)
		}
		s := NewSession(spec, src)
		s.AddNode("C")
		s.AddNode("C")
		if err := s.AddEdge(0, 1, "s"); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res := s.RunCtx(ctx)
		if !res.Truncated {
			t.Fatalf("withIndex=%v: canceled run not truncated", withIndex)
		}
		if len(res.MatchedGraphs) != 0 {
			t.Fatalf("withIndex=%v: canceled run returned matches", withIndex)
		}
		// The same session under a live context still answers fully.
		live := s.RunCtx(context.Background())
		if live.Truncated || len(live.MatchedGraphs) == 0 {
			t.Fatalf("withIndex=%v: live run = %+v", withIndex, live)
		}
	}
}

func TestRunCtxNetworkCanceled(t *testing.T) {
	g := datagen.WattsStrogatz(3, 200, 4, 0.1)
	spec := &Spec{Name: "net", Mode: DataDriven}
	s := NewSession(spec, DataSource{Corpus: pattern.SingletonCorpus(g), Network: true})
	s.AddNode("")
	s.AddNode("")
	if err := s.AddEdge(0, 1, ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := s.RunCtx(ctx)
	if !res.Truncated {
		t.Fatal("canceled network run not truncated")
	}
	live := s.RunCtx(context.Background())
	if live.Embeddings == 0 {
		t.Fatal("live network run found no embeddings")
	}
}
