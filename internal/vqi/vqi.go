// Package vqi models visual graph query interfaces.
//
// A VQI has four key components (tutorial Section 2.1): the Attribute Panel
// (node/edge labels of the data source), the Pattern Panel (basic and
// canned patterns), the Query Panel (the query the user is drawing), and
// the Results Panel (matches of the query). The contents of the Attribute
// and Pattern panels hinge on the data source; a *data-driven* VQI
// populates them automatically from the repository under a pattern budget,
// while a *manual* VQI hard-codes them at implementation time.
//
// This package provides:
//
//   - Spec: the serializable interface description (attribute + pattern
//     panels with thumbnail layouts) consumed by cmd/vqiserve's front end;
//   - builders: data-driven construction from a corpus (CATAPULT), from a
//     network (TATTOO), and manual presets mirroring the static pattern
//     sets of industrial VQIs;
//   - Session: the Query/Results panel state machine — draw nodes and
//     edges, stamp patterns, run the query against the data source.
package vqi

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/catapult"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/layout"
	"repro/internal/pattern"
	"repro/internal/tattoo"
)

// Mode records how a VQI was constructed.
type Mode string

// VQI construction modes.
const (
	Manual     Mode = "manual"
	DataDriven Mode = "data-driven"
)

// Spec is a complete, serializable VQI description.
type Spec struct {
	Name      string         `json:"name"`
	Mode      Mode           `json:"mode"`
	Attribute AttributePanel `json:"attribute_panel"`
	Patterns  PatternPanel   `json:"pattern_panel"`
}

// AttributePanel lists the labels available for query construction, sorted
// by descending frequency in the data source (manual VQIs: designer
// order).
type AttributePanel struct {
	NodeLabels []string `json:"node_labels"`
	EdgeLabels []string `json:"edge_labels"`
}

// PatternPanel holds the displayed patterns.
type PatternPanel struct {
	Basic  []PatternSpec `json:"basic"`
	Canned []PatternSpec `json:"canned"`
}

// PatternSpec is one displayed pattern with its thumbnail layout and
// quality annotations.
type PatternSpec struct {
	Name          string      `json:"name"`
	Source        string      `json:"source"`
	NodeLabels    []string    `json:"nodes"`
	Edges         []EdgeSpec  `json:"edges"`
	Positions     []PointSpec `json:"positions"`
	CognitiveLoad float64     `json:"cognitive_load"`
	Crossings     int         `json:"crossings"`
}

// EdgeSpec is a pattern edge on the wire.
type EdgeSpec struct {
	U     int    `json:"u"`
	V     int    `json:"v"`
	Label string `json:"label"`
}

// PointSpec is a thumbnail coordinate on the wire.
type PointSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// ThumbSize is the pattern thumbnail canvas size in abstract units.
const ThumbSize = 120.0

// patternSpec serializes one pattern with the given drawing.
func patternSpec(p *pattern.Pattern, l *layout.Layout) PatternSpec {
	ps := PatternSpec{
		Name:          p.G.Name(),
		Source:        p.Source,
		CognitiveLoad: pattern.CognitiveLoad(p),
		Crossings:     layout.EdgeCrossings(p.G, l),
	}
	for i := 0; i < p.G.NumNodes(); i++ {
		ps.NodeLabels = append(ps.NodeLabels, p.G.NodeLabel(i))
		ps.Positions = append(ps.Positions, PointSpec{X: l.Pos[i].X, Y: l.Pos[i].Y})
	}
	for _, e := range p.G.Edges() {
		ps.Edges = append(ps.Edges, EdgeSpec{U: e.U, V: e.V, Label: e.Label})
	}
	return ps
}

// layoutPatterns draws a pattern list aesthetics-aware: per pattern a
// best-of-seeds layout search, and display order by ascending visual
// complexity (the panel-level optimization the tutorial's future-work
// section calls for).
func layoutPatterns(pats []*pattern.Pattern, seed int64) []PatternSpec {
	graphs := make([]*graph.Graph, len(pats))
	for i, p := range pats {
		graphs[i] = p.G
	}
	items := layout.OptimizePanel(graphs, ThumbSize, ThumbSize, 4, seed)
	specs := make([]PatternSpec, len(pats))
	for _, it := range items {
		specs[it.Cell] = patternSpec(pats[it.Index], it.Layout)
	}
	return specs
}

// PatternGraph reconstructs the pattern graph of a PatternSpec.
func (ps PatternSpec) PatternGraph() (*graph.Graph, error) {
	g := graph.New(ps.Name)
	for _, l := range ps.NodeLabels {
		g.AddNode(l)
	}
	for _, e := range ps.Edges {
		if _, err := g.AddEdge(e.U, e.V, e.Label); err != nil {
			return nil, fmt.Errorf("vqi: pattern %q: %v", ps.Name, err)
		}
	}
	return g, nil
}

// MarshalJSON-ready helpers.

// Encode serializes the spec as indented JSON.
func (s *Spec) Encode() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Decode parses a spec from JSON.
func Decode(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural integrity of a spec: every pattern must
// decode to a valid graph and thumbnails must have one position per node.
// Size classification is also enforced: basic patterns never exceed
// BasicMaxSize edges, and — for data-driven specs, whose canned patterns
// come from a budgeted selection — canned patterns must exceed it. Manual
// presets may hard-code small domain motifs in the canned panel.
func (s *Spec) Validate() error {
	check := func(kind string, specs []PatternSpec, sizeRule func(edges int) bool) error {
		for i, ps := range specs {
			g, err := ps.PatternGraph()
			if err != nil {
				return fmt.Errorf("vqi: %s pattern %d: %v", kind, i, err)
			}
			if len(ps.Positions) != g.NumNodes() {
				return fmt.Errorf("vqi: %s pattern %d (%s): %d positions for %d nodes",
					kind, i, ps.Name, len(ps.Positions), g.NumNodes())
			}
			if sizeRule != nil && !sizeRule(g.NumEdges()) {
				return fmt.Errorf("vqi: %s pattern %d (%s) has %d edges — misclassified",
					kind, i, ps.Name, g.NumEdges())
			}
		}
		return nil
	}
	if err := check("basic", s.Patterns.Basic, func(m int) bool { return m <= pattern.BasicMaxSize }); err != nil {
		return err
	}
	var cannedRule func(int) bool
	if s.Mode == DataDriven {
		cannedRule = func(m int) bool { return m > pattern.BasicMaxSize }
	}
	return check("canned", s.Patterns.Canned, cannedRule)
}

// AllPatterns reconstructs every displayed pattern (basic then canned) as
// pattern values.
func (s *Spec) AllPatterns() ([]*pattern.Pattern, error) {
	var out []*pattern.Pattern
	for _, ps := range append(append([]PatternSpec(nil), s.Patterns.Basic...), s.Patterns.Canned...) {
		g, err := ps.PatternGraph()
		if err != nil {
			return nil, err
		}
		out = append(out, pattern.New(g, ps.Source))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

// BuildFromCorpus constructs a data-driven VQI for a corpus of data graphs
// using CATAPULT for the Pattern Panel and a corpus scan for the Attribute
// Panel.
func BuildFromCorpus(c *graph.Corpus, cfg catapult.Config) (*Spec, *catapult.Result, error) {
	return BuildFromCorpusCtx(context.Background(), c, cfg)
}

// BuildFromCorpusCtx is BuildFromCorpus under a context: if the context
// dies mid-build the returned spec carries the best pattern set selected
// so far and the result is marked Truncated.
func BuildFromCorpusCtx(ctx context.Context, c *graph.Corpus, cfg catapult.Config) (*Spec, *catapult.Result, error) {
	res, err := catapult.SelectCtx(ctx, c, cfg)
	if err != nil {
		return nil, nil, err
	}
	stats := c.Stats()
	spec := &Spec{
		Name: "data-driven-corpus-vqi",
		Mode: DataDriven,
		Attribute: AttributePanel{
			NodeLabels: stats.SortedNodeLabels(),
			EdgeLabels: stats.SortedEdgeLabels(),
		},
	}
	fillPatternPanel(spec, res.Patterns, cfg.Seed)
	return spec, res, nil
}

// BuildFromNetwork constructs a data-driven VQI for a single large network
// using TATTOO.
func BuildFromNetwork(g *graph.Graph, cfg tattoo.Config) (*Spec, *tattoo.Result, error) {
	return BuildFromNetworkCtx(context.Background(), g, cfg)
}

// BuildFromNetworkCtx is BuildFromNetwork under a context, degrading like
// BuildFromCorpusCtx.
func BuildFromNetworkCtx(ctx context.Context, g *graph.Graph, cfg tattoo.Config) (*Spec, *tattoo.Result, error) {
	res, err := tattoo.SelectCtx(ctx, g, cfg)
	if err != nil {
		return nil, nil, err
	}
	spec := &Spec{
		Name: "data-driven-network-vqi",
		Mode: DataDriven,
		Attribute: AttributePanel{
			NodeLabels: sortedLabelKeys(g.NodeLabels()),
			EdgeLabels: sortedLabelKeys(g.EdgeLabels()),
		},
	}
	fillPatternPanel(spec, res.Patterns, cfg.Seed)
	return spec, res, nil
}

// RefreshPatterns replaces the canned patterns of a spec in place — the
// hook MIDAS maintenance uses after a batch update.
func (s *Spec) RefreshPatterns(canned []*pattern.Pattern, seed int64) {
	s.Patterns.Canned = layoutPatterns(canned, seed)
}

func fillPatternPanel(spec *Spec, canned []*pattern.Pattern, seed int64) {
	spec.Patterns.Basic = layoutPatterns(pattern.Basic(), seed)
	spec.RefreshPatterns(canned, seed+100)
}

func sortedLabelKeys(m map[string]int) []string {
	// Reuse the corpus ordering: descending frequency then alphabetical.
	stats := graph.CorpusStats{NodeLabels: m}
	return stats.SortedNodeLabels()
}

// ManualPreset names the built-in manual VQI configurations. They mirror
// the static pattern sets of the industrial interfaces the tutorial
// reviews: a sketcher exposing only generic shapes, and a chemistry
// sketcher exposing a handful of hard-coded domain motifs.
type ManualPreset string

// Manual presets.
const (
	// PresetBasicOnly models interfaces exposing only edge/path/triangle
	// construction (Bloom-style).
	PresetBasicOnly ManualPreset = "basic-only"
	// PresetChemistry models chemistry sketchers with hard-coded ring
	// motifs (PubChem/eMolecules-style): benzene ring, cyclopentane,
	// carbonyl chain.
	PresetChemistry ManualPreset = "chemistry"
)

// BuildManual constructs a manual VQI: the Attribute Panel is still scanned
// from the data (every real interface ships label lists), but the Pattern
// Panel is a fixed, data-oblivious set.
func BuildManual(preset ManualPreset, c *graph.Corpus) (*Spec, error) {
	var canned []*pattern.Pattern
	switch preset {
	case PresetBasicOnly:
		// No canned patterns at all.
	case PresetChemistry:
		canned = chemistryPatterns()
	default:
		return nil, fmt.Errorf("vqi: unknown manual preset %q", preset)
	}
	spec := &Spec{Name: "manual-" + string(preset), Mode: Manual}
	if c != nil {
		stats := c.Stats()
		spec.Attribute = AttributePanel{
			NodeLabels: stats.SortedNodeLabels(),
			EdgeLabels: stats.SortedEdgeLabels(),
		}
	}
	fillPatternPanel(spec, canned, 7)
	return spec, nil
}

// chemistryPatterns returns the fixed domain motifs of the chemistry
// preset.
func chemistryPatterns() []*pattern.Pattern {
	benzene := graph.New("benzene")
	benzene.AddNodes(6, "C")
	for i := 0; i < 6; i++ {
		benzene.MustAddEdge(i, (i+1)%6, "a")
	}
	cyclopentane := graph.New("cyclopentane")
	cyclopentane.AddNodes(5, "C")
	for i := 0; i < 5; i++ {
		cyclopentane.MustAddEdge(i, (i+1)%5, "s")
	}
	carbonyl := graph.New("carbonyl-chain")
	c0 := carbonyl.AddNode("C")
	c1 := carbonyl.AddNode("C")
	o := carbonyl.AddNode("O")
	c2 := carbonyl.AddNode("C")
	carbonyl.MustAddEdge(c0, c1, "s")
	carbonyl.MustAddEdge(c1, o, "d")
	carbonyl.MustAddEdge(c1, c2, "s")
	return []*pattern.Pattern{
		pattern.New(benzene, "manual"),
		pattern.New(cyclopentane, "manual"),
		pattern.New(carbonyl, "manual"),
	}
}

// ---------------------------------------------------------------------------
// Session: Query and Results panels
// ---------------------------------------------------------------------------

// DataSource is what a session queries: a corpus of data graphs or a
// single network wrapped as a 1-graph corpus.
type DataSource struct {
	Corpus *graph.Corpus
	// Network is true when the source is a single large network, in which
	// case results are embeddings rather than matching graphs.
	Network bool
	// Index, if set, accelerates corpus queries with filter-then-verify
	// (package gindex). It must have been built over Corpus.
	Index *gindex.Index
}

// Session is the state of one query-formulation interaction: the Query
// Panel content plus counters of the atomic actions performed, which the
// usability experiments aggregate. Every mutating action snapshots the
// query first, so Undo provides the one-step error recovery that the
// usability literature's "Errors" criterion asks interfaces to support.
type Session struct {
	Spec   *Spec
	Source DataSource
	Query  *graph.Graph

	// Actions counts the atomic steps performed (the "steps" of the
	// usability studies). Undo counts as a step too — errors cost time.
	Actions int
	// Undos counts how many times the user backed out of an action.
	Undos int

	history []*graph.Graph
}

// NewSession opens a session over a spec and data source.
func NewSession(spec *Spec, src DataSource) *Session {
	return &Session{Spec: spec, Source: src, Query: graph.New("query")}
}

// maxHistory bounds the undo stack.
const maxHistory = 64

func (s *Session) snapshot() {
	s.history = append(s.history, s.Query.Clone())
	if len(s.history) > maxHistory {
		s.history = s.history[1:]
	}
}

// Undo reverts the most recent mutating action. It reports whether there
// was anything to undo.
func (s *Session) Undo() bool {
	if len(s.history) == 0 {
		return false
	}
	s.Actions++
	s.Undos++
	s.Query = s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	return true
}

// AddNode draws a labeled node on the Query Panel.
func (s *Session) AddNode(label string) graph.NodeID {
	s.snapshot()
	s.Actions++
	return s.Query.AddNode(label)
}

// AddEdge draws an edge on the Query Panel.
func (s *Session) AddEdge(u, v graph.NodeID, label string) error {
	s.snapshot()
	s.Actions++
	_, err := s.Query.AddEdge(u, v, label)
	if err != nil {
		// Failed gestures leave the query untouched; drop the snapshot.
		s.history = s.history[:len(s.history)-1]
	}
	return err
}

// SetNodeLabel relabels a query node (e.g. after stamping a wildcard
// pattern).
func (s *Session) SetNodeLabel(id graph.NodeID, label string) {
	s.snapshot()
	s.Actions++
	s.Query.SetNodeLabel(id, label)
}

// StampPattern copies pattern panel entry (basic index < len(Basic), then
// canned) onto the Query Panel as a new component and returns the IDs of
// the new nodes. This is pattern-at-a-time construction: one action
// regardless of pattern size.
func (s *Session) StampPattern(index int) ([]graph.NodeID, error) {
	all := append(append([]PatternSpec(nil), s.Spec.Patterns.Basic...), s.Spec.Patterns.Canned...)
	if index < 0 || index >= len(all) {
		return nil, fmt.Errorf("vqi: pattern index %d out of range [0,%d)", index, len(all))
	}
	pg, err := all[index].PatternGraph()
	if err != nil {
		return nil, err
	}
	s.snapshot()
	s.Actions++
	var ids []graph.NodeID
	for v := 0; v < pg.NumNodes(); v++ {
		ids = append(ids, s.Query.AddNode(pg.NodeLabel(v)))
	}
	for _, e := range pg.Edges() {
		s.Query.MustAddEdge(ids[e.U], ids[e.V], e.Label)
	}
	return ids, nil
}

// MergeNodes fuses query node b into a (the drag-merge gesture used to
// connect a stamped pattern with the rest of the query). Edges incident to
// b are re-attached to a; duplicate edges collapse.
func (s *Session) MergeNodes(a, b graph.NodeID) error {
	if a == b {
		return fmt.Errorf("vqi: cannot merge a node with itself")
	}
	if a < 0 || a >= s.Query.NumNodes() || b < 0 || b >= s.Query.NumNodes() {
		return fmt.Errorf("vqi: merge nodes out of range")
	}
	s.snapshot()
	s.Actions++
	// Rebuild the query without b.
	old := s.Query
	remap := make([]graph.NodeID, old.NumNodes())
	ng := graph.New(old.Name())
	for v := 0; v < old.NumNodes(); v++ {
		if v == b {
			continue
		}
		remap[v] = ng.AddNode(old.NodeLabel(v))
	}
	remap[b] = remap[a]
	for _, e := range old.Edges() {
		u, v := remap[e.U], remap[e.V]
		if u == v || ng.HasEdge(u, v) {
			continue
		}
		ng.MustAddEdge(u, v, e.Label)
	}
	s.Query = ng
	return nil
}

// Results is the Results Panel content.
type Results struct {
	// MatchedGraphs lists names of corpus graphs containing the query
	// (corpus sources).
	MatchedGraphs []string
	// Embeddings counts query embeddings (network sources; capped).
	Embeddings int
	// Truncated reports that search budgets were hit.
	Truncated bool
}

// Run executes the current query against the data source.
func (s *Session) Run() Results {
	return s.RunCtx(context.Background())
}

// RunCtx is Run under a context: the context is threaded into every
// embedding search (network counts, index verification, corpus scans), so
// an interactive deadline returns the partial Results Panel content found
// so far with Truncated set, never hanging on a pathological query.
func (s *Session) RunCtx(ctx context.Context) Results {
	s.Actions++
	opts := isomorph.Options{MaxEmbeddings: 1000, MaxSteps: 2_000_000, Ctx: ctx}
	var res Results
	if s.Source.Corpus == nil {
		return res
	}
	if s.Source.Network {
		g := s.Source.Corpus.Graph(0)
		r := isomorph.Count(s.Query, g, opts)
		res.Embeddings = r.Embeddings
		res.Truncated = r.Truncated
		return res
	}
	scanOpts := isomorph.Options{MaxEmbeddings: 1, MaxSteps: 200000, Ctx: ctx}
	if s.Source.Index != nil {
		r := s.Source.Index.SearchCtx(ctx, s.Query, scanOpts)
		res.MatchedGraphs = r.Matches
		res.Truncated = r.Truncated
		return res
	}
	s.Source.Corpus.Each(func(_ int, g *graph.Graph) {
		if ctx.Err() != nil {
			res.Truncated = true
			return
		}
		r := isomorph.Count(s.Query, g, scanOpts)
		if r.Embeddings > 0 {
			res.MatchedGraphs = append(res.MatchedGraphs, g.Name())
		}
		if r.Truncated {
			res.Truncated = true
		}
	})
	return res
}
