package vqi

// Auto-suggestion. The tutorial's related-work interfaces (VIIQ and
// successors) assist top-down formulation by suggesting how a partial
// query could continue. A data-driven VQI gets this almost for free: the
// canned patterns *are* the statistically common shapes of the data
// source, so any canned pattern that contains the user's partial query as
// a subgraph is a plausible completion — and stamping it instead of
// drawing on is exactly the pattern-at-a-time shortcut the usability
// studies measure.

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/isomorph"
)

// Suggestion is one proposed completion of the current partial query.
type Suggestion struct {
	// PatternIndex identifies the suggested pattern in the combined
	// basic+canned panel order (usable with Session.StampPattern).
	PatternIndex int
	// Pattern is the panel entry itself.
	Pattern PatternSpec
	// NewEdges is how many edges the pattern adds beyond the partial
	// query — smaller means a gentler next step.
	NewEdges int
}

// Suggest returns the panel patterns that contain the session's current
// query as a (structural, label-compatible) subgraph, ordered by fewest
// new edges first then by cognitive load. An empty query suggests
// everything, cheapest first — the bottom-up entry point for a user with
// no pattern in mind.
func (s *Session) Suggest(limit int) ([]Suggestion, error) {
	all := append(append([]PatternSpec(nil), s.Spec.Patterns.Basic...), s.Spec.Patterns.Canned...)
	var out []Suggestion
	q := s.Query
	opts := isomorph.Options{MaxEmbeddings: 1, MaxSteps: 100000}
	for i, ps := range all {
		pg, err := ps.PatternGraph()
		if err != nil {
			return nil, err
		}
		if pg.NumEdges() <= q.NumEdges() {
			continue // not a continuation
		}
		if q.NumNodes() > 0 && !isomorph.Exists(wildcardQuery(q), pg, opts) {
			continue
		}
		out = append(out, Suggestion{
			PatternIndex: i,
			Pattern:      ps,
			NewEdges:     pg.NumEdges() - q.NumEdges(),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].NewEdges != out[b].NewEdges {
			return out[a].NewEdges < out[b].NewEdges
		}
		if out[a].Pattern.CognitiveLoad != out[b].Pattern.CognitiveLoad {
			return out[a].Pattern.CognitiveLoad < out[b].Pattern.CognitiveLoad
		}
		return out[a].PatternIndex < out[b].PatternIndex
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// wildcardQuery relaxes labels the user has not constrained: empty labels
// stay wildcards, concrete labels must match the pattern's label or the
// pattern's own wildcard. Since isomorph treats the *pattern side* as the
// wildcard holder, we match the query into the candidate with the query's
// concrete labels required to be present — which is what "this pattern
// continues my query" means when the pattern carries data-derived labels.
func wildcardQuery(q *graph.Graph) *graph.Graph {
	// The query is already the "pattern" in the matching call; labels it
	// holds must appear in the suggestion. Wildcards ("") already match
	// anything, so the query is usable as-is. The indirection exists for
	// documentation and future relaxation policies.
	return q
}

// SuggestForSpec is a session-free variant used by HTTP handlers: it
// builds a throwaway query graph from wire data and suggests completions
// from the spec.
func SuggestForSpec(spec *Spec, q *graph.Graph, limit int) ([]Suggestion, error) {
	s := &Session{Spec: spec, Query: q}
	return s.Suggest(limit)
}
