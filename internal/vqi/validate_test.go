package vqi

import (
	"strings"
	"testing"
)

func TestValidateAcceptsBuiltSpecs(t *testing.T) {
	spec := corpusSpec(t)
	if err := spec.Validate(); err != nil {
		t.Fatalf("built spec invalid: %v", err)
	}
	manual, _ := BuildManual(PresetChemistry, corpus())
	if err := manual.Validate(); err != nil {
		t.Fatalf("manual spec invalid: %v", err)
	}
}

func TestValidateRejectsCorruptSpecs(t *testing.T) {
	mutations := []struct {
		name    string
		mutate  func(*Spec)
		keyword string
	}{
		{"bad-edge-endpoint", func(s *Spec) {
			s.Patterns.Canned[0].Edges[0].V = 999
		}, "pattern"},
		{"missing-position", func(s *Spec) {
			s.Patterns.Canned[0].Positions = s.Patterns.Canned[0].Positions[:1]
		}, "positions"},
		{"basic-too-big", func(s *Spec) {
			// Move a canned pattern into the basic panel.
			s.Patterns.Basic = append(s.Patterns.Basic, s.Patterns.Canned[0])
		}, "misclassified"},
		{"canned-too-small", func(s *Spec) {
			// Move a basic pattern into the canned panel.
			s.Patterns.Canned = append(s.Patterns.Canned, s.Patterns.Basic[0])
		}, "misclassified"},
	}
	for _, m := range mutations {
		spec := corpusSpec(t)
		m.mutate(spec)
		err := spec.Validate()
		if err == nil {
			t.Errorf("%s: corrupt spec accepted", m.name)
			continue
		}
		if !strings.Contains(err.Error(), m.keyword) {
			t.Errorf("%s: error %q lacks %q", m.name, err, m.keyword)
		}
	}
}
