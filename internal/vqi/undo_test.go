package vqi

import (
	"testing"
)

func TestUndoAddNode(t *testing.T) {
	spec, _ := BuildManual(PresetBasicOnly, nil)
	s := NewSession(spec, DataSource{})
	s.AddNode("C")
	s.AddNode("N")
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	if s.Query.NumNodes() != 1 || s.Query.NodeLabel(0) != "C" {
		t.Fatalf("query after undo = %s", s.Query.Dump())
	}
	if s.Undos != 1 {
		t.Fatalf("undos = %d", s.Undos)
	}
	// Undo counts as an action (errors cost steps).
	if s.Actions != 3 {
		t.Fatalf("actions = %d", s.Actions)
	}
}

func TestUndoStampAndMerge(t *testing.T) {
	spec, _ := BuildManual(PresetChemistry, nil)
	s := NewSession(spec, DataSource{})
	a := s.AddNode("C")
	if _, err := s.StampPattern(3); err != nil { // benzene-sized stamp
		t.Fatal(err)
	}
	after := s.Query.NumNodes()
	if after <= 1 {
		t.Fatal("stamp did nothing")
	}
	if !s.Undo() {
		t.Fatal("undo stamp failed")
	}
	if s.Query.NumNodes() != 1 {
		t.Fatalf("undo stamp left %d nodes", s.Query.NumNodes())
	}
	// Merge then undo.
	b := s.AddNode("C")
	s.AddEdge(a, b, "s")
	if err := s.MergeNodes(a, b); err != nil {
		t.Fatal(err)
	}
	if s.Query.NumNodes() != 1 {
		t.Fatal("merge failed")
	}
	if !s.Undo() {
		t.Fatal("undo merge failed")
	}
	if s.Query.NumNodes() != 2 || !s.Query.HasEdge(0, 1) {
		t.Fatalf("undo merge state = %s", s.Query.Dump())
	}
}

func TestUndoEmptyHistory(t *testing.T) {
	spec, _ := BuildManual(PresetBasicOnly, nil)
	s := NewSession(spec, DataSource{})
	if s.Undo() {
		t.Fatal("undo on empty history succeeded")
	}
	if s.Actions != 0 {
		t.Fatal("failed undo must not count as an action")
	}
}

func TestFailedActionNotUndoable(t *testing.T) {
	spec, _ := BuildManual(PresetBasicOnly, nil)
	s := NewSession(spec, DataSource{})
	a := s.AddNode("C")
	// Self-loop fails; the failed gesture must not pollute the history.
	if err := s.AddEdge(a, a, "s"); err == nil {
		t.Fatal("self-loop accepted")
	}
	if !s.Undo() {
		t.Fatal("undo failed")
	}
	// The undo reverts AddNode, not the failed edge.
	if s.Query.NumNodes() != 0 {
		t.Fatalf("query = %s", s.Query.Dump())
	}
	if s.Undo() {
		t.Fatal("history should be exhausted")
	}
}

func TestUndoDepthBounded(t *testing.T) {
	spec, _ := BuildManual(PresetBasicOnly, nil)
	s := NewSession(spec, DataSource{})
	for i := 0; i < maxHistory+20; i++ {
		s.AddNode("C")
	}
	undone := 0
	for s.Undo() {
		undone++
	}
	if undone != maxHistory {
		t.Fatalf("undo depth = %d, want %d", undone, maxHistory)
	}
}
