package vqi

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/tattoo"
)

func corpus() *graph.Corpus {
	return datagen.ChemicalCorpus(4, 25, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
}

func corpusSpec(t *testing.T) *Spec {
	t.Helper()
	spec, _, err := BuildFromCorpus(corpus(), catapult.Config{
		Budget: pattern.Budget{Count: 4, MinSize: 4, MaxSize: 8},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestBuildFromCorpus(t *testing.T) {
	spec := corpusSpec(t)
	if spec.Mode != DataDriven {
		t.Fatalf("mode = %s", spec.Mode)
	}
	if len(spec.Attribute.NodeLabels) == 0 || spec.Attribute.NodeLabels[0] != "C" {
		t.Fatalf("attribute panel = %v (carbon must lead)", spec.Attribute.NodeLabels)
	}
	if len(spec.Patterns.Basic) != 3 {
		t.Fatalf("basic patterns = %d", len(spec.Patterns.Basic))
	}
	if len(spec.Patterns.Canned) == 0 {
		t.Fatal("no canned patterns")
	}
	for _, ps := range spec.Patterns.Canned {
		if len(ps.Positions) != len(ps.NodeLabels) {
			t.Fatal("thumbnail layout incomplete")
		}
		if ps.CognitiveLoad <= 0 {
			t.Fatal("cognitive load annotation missing")
		}
	}
}

func TestBuildFromNetwork(t *testing.T) {
	g := datagen.WattsStrogatz(3, 300, 6, 0.1)
	spec, res, err := BuildFromNetwork(g, tattoo.Config{
		Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 9},
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns.Canned) != len(res.Patterns) {
		t.Fatal("panel/selection mismatch")
	}
	if len(spec.Attribute.NodeLabels) == 0 {
		t.Fatal("attribute panel empty")
	}
}

func TestBuildManualPresets(t *testing.T) {
	c := corpus()
	basic, err := BuildManual(PresetBasicOnly, c)
	if err != nil {
		t.Fatal(err)
	}
	if basic.Mode != Manual || len(basic.Patterns.Canned) != 0 {
		t.Fatal("basic-only preset must have no canned patterns")
	}
	if len(basic.Patterns.Basic) != 3 {
		t.Fatal("basic patterns missing")
	}
	chem, err := BuildManual(PresetChemistry, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(chem.Patterns.Canned) != 3 {
		t.Fatalf("chemistry preset canned = %d", len(chem.Patterns.Canned))
	}
	if _, err := BuildManual("nope", c); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// nil corpus: attribute panel empty but build succeeds.
	noData, err := BuildManual(PresetBasicOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(noData.Attribute.NodeLabels) != 0 {
		t.Fatal("nil corpus must leave attribute panel empty")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := corpusSpec(t)
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatal("spec changed across JSON round trip")
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("invalid JSON accepted")
	}
}

func TestAllPatterns(t *testing.T) {
	spec := corpusSpec(t)
	pats, err := spec.AllPatterns()
	if err != nil {
		t.Fatal(err)
	}
	want := len(spec.Patterns.Basic) + len(spec.Patterns.Canned)
	if len(pats) != want {
		t.Fatalf("AllPatterns = %d, want %d", len(pats), want)
	}
}

func TestRefreshPatterns(t *testing.T) {
	spec := corpusSpec(t)
	star := graph.New("star")
	c := star.AddNode("C")
	for i := 0; i < 4; i++ {
		l := star.AddNode("N")
		star.MustAddEdge(c, l, "s")
	}
	spec.RefreshPatterns([]*pattern.Pattern{pattern.New(star, "midas")}, 3)
	if len(spec.Patterns.Canned) != 1 || spec.Patterns.Canned[0].Source != "midas" {
		t.Fatalf("refresh failed: %+v", spec.Patterns.Canned)
	}
	if len(spec.Patterns.Basic) != 3 {
		t.Fatal("refresh must not touch basic patterns")
	}
}

func TestSessionEdgeAtATime(t *testing.T) {
	c := corpus()
	spec, _ := BuildManual(PresetBasicOnly, c)
	s := NewSession(spec, DataSource{Corpus: c})
	a := s.AddNode("C")
	b := s.AddNode("C")
	if err := s.AddEdge(a, b, "s"); err != nil {
		t.Fatal(err)
	}
	if s.Actions != 3 {
		t.Fatalf("actions = %d", s.Actions)
	}
	res := s.Run()
	if len(res.MatchedGraphs) == 0 {
		t.Fatal("C-C bond must match compounds")
	}
	if s.Actions != 4 {
		t.Fatalf("Run must count as an action: %d", s.Actions)
	}
}

func TestSessionStampPattern(t *testing.T) {
	c := corpus()
	spec, _ := BuildManual(PresetChemistry, c)
	s := NewSession(spec, DataSource{Corpus: c})
	// Index 3 = first canned (after 3 basic) = benzene.
	ids, err := s.StampPattern(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 || s.Query.NumEdges() != 6 {
		t.Fatalf("stamped query = %s", s.Query)
	}
	if s.Actions != 1 {
		t.Fatalf("stamp must be one action: %d", s.Actions)
	}
	if _, err := s.StampPattern(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := s.StampPattern(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestSessionMergeNodes(t *testing.T) {
	spec, _ := BuildManual(PresetBasicOnly, nil)
	s := NewSession(spec, DataSource{})
	a := s.AddNode("C")
	b := s.AddNode("N")
	cc := s.AddNode("C")
	s.AddEdge(a, b, "s")
	s.AddEdge(b, cc, "s")
	// Merge cc into a: the path closes into a 2-node multi... duplicate
	// collapses; result: a-b with both edges collapsing onto one pair.
	if err := s.MergeNodes(a, cc); err != nil {
		t.Fatal(err)
	}
	if s.Query.NumNodes() != 2 || s.Query.NumEdges() != 1 {
		t.Fatalf("merged query = %s", s.Query)
	}
	if err := s.MergeNodes(0, 0); err == nil {
		t.Fatal("self merge accepted")
	}
	if err := s.MergeNodes(0, 99); err == nil {
		t.Fatal("out-of-range merge accepted")
	}
}

func TestSessionIndexedRunMatchesScan(t *testing.T) {
	c := corpus()
	spec, _ := BuildManual(PresetBasicOnly, c)
	plain := NewSession(spec, DataSource{Corpus: c})
	indexed := NewSession(spec, DataSource{Corpus: c, Index: gindex.Build(c)})
	for _, s := range []*Session{plain, indexed} {
		a := s.AddNode("C")
		b := s.AddNode("N")
		if err := s.AddEdge(a, b, "s"); err != nil {
			t.Fatal(err)
		}
	}
	got := indexed.Run().MatchedGraphs
	want := plain.Run().MatchedGraphs
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("indexed results differ: %d vs %d matches", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("no matches at all")
	}
}

func TestSessionNetworkRun(t *testing.T) {
	g := datagen.WattsStrogatz(5, 120, 4, 0.1)
	spec, _ := BuildManual(PresetBasicOnly, nil)
	src := DataSource{Corpus: pattern.SingletonCorpus(g), Network: true}
	s := NewSession(spec, src)
	a := s.AddNode("")
	b := s.AddNode("")
	s.AddEdge(a, b, "")
	res := s.Run()
	if res.Embeddings == 0 {
		t.Fatal("wildcard edge must embed in network")
	}
	// Empty source.
	empty := NewSession(spec, DataSource{})
	if r := empty.Run(); len(r.MatchedGraphs) != 0 || r.Embeddings != 0 {
		t.Fatal("empty source must return empty results")
	}
}
