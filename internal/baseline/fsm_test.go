package baseline

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

func chainCorpus(copies int, labels ...string) *graph.Corpus {
	c := graph.NewCorpus()
	for i := 0; i < copies; i++ {
		g := graph.New(string(rune('a' + i)))
		for _, l := range labels {
			g.AddNode(l)
		}
		for j := 0; j+1 < len(labels); j++ {
			g.MustAddEdge(j, j+1, "-")
		}
		c.MustAdd(g)
	}
	return c
}

func TestExhaustiveFSMFindsCommonPattern(t *testing.T) {
	// Every graph is the chain A-B-C-D; the 3-edge chain must be found
	// with full support.
	c := chainCorpus(5, "A", "B", "C", "D")
	b := pattern.Budget{Count: 3, MinSize: 3, MaxSize: 3}
	out, truncated, err := ExhaustiveFSM(c, b, 0.9, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("tiny corpus must not time out")
	}
	if len(out) != 1 {
		t.Fatalf("mined %d patterns, want exactly the full chain", len(out))
	}
	if out[0].Support != 5 || out[0].Size() != 3 {
		t.Fatalf("pattern = %+v", out[0])
	}
	if !isomorph.Exists(out[0].G, c.Graph(0), isomorph.Options{}) {
		t.Fatal("mined pattern does not embed")
	}
}

func TestExhaustiveFSMSupportThreshold(t *testing.T) {
	c := chainCorpus(4, "A", "B", "C")
	// One outlier with different labels.
	g := graph.New("outlier")
	g.AddNode("X")
	g.AddNode("Y")
	g.AddNode("Z")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	c.MustAdd(g)
	b := pattern.Budget{Count: 10, MinSize: 2, MaxSize: 2}
	out, _, err := ExhaustiveFSM(c, b, 0.5, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Only A-B-C reaches 50% support (4/5); X-Y-Z has 1/5.
	if len(out) != 1 || out[0].Support != 4 {
		t.Fatalf("out = %v", out)
	}
}

func TestExhaustiveFSMTimeLimit(t *testing.T) {
	// A degenerate limit must truncate immediately but still return
	// (level-1 results may or may not be present — just no panic and the
	// truncated flag set when the lattice was cut).
	c := chainCorpus(3, "A", "B", "C", "D", "E")
	b := pattern.Budget{Count: 5, MinSize: 2, MaxSize: 6}
	_, truncated, err := ExhaustiveFSM(c, b, 0.5, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("nanosecond budget must truncate")
	}
}

func TestExhaustiveFSMInvalidBudget(t *testing.T) {
	if _, _, err := ExhaustiveFSM(chainCorpus(2, "A", "B"), pattern.Budget{}, 0.5, time.Second); err == nil {
		t.Fatal("invalid budget accepted")
	}
}

func TestExhaustiveFSMClosesCycles(t *testing.T) {
	// Corpus of triangles: extension (b) must discover the triangle.
	c := graph.NewCorpus()
	for i := 0; i < 3; i++ {
		g := graph.New(string(rune('a' + i)))
		g.AddNodes(3, "A")
		g.MustAddEdge(0, 1, "-")
		g.MustAddEdge(1, 2, "-")
		g.MustAddEdge(0, 2, "-")
		c.MustAdd(g)
	}
	b := pattern.Budget{Count: 5, MinSize: 3, MaxSize: 3}
	out, _, err := ExhaustiveFSM(c, b, 0.9, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range out {
		if p.G.NumNodes() == 3 && p.G.NumEdges() == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("triangle not mined: %v", out)
	}
}
