// Package baseline implements the comparison selectors the surveyed
// evaluations measure data-driven frameworks against:
//
//   - Random: canned patterns are random connected subgraphs of random data
//     graphs — what a VQI designer with database access but no method might
//     expose.
//   - TopFrequent: the classical frequent-subgraph approach — sample
//     candidate subgraphs, rank by corpus support, take the most frequent.
//     High coverage, but poor diversity (frequent patterns are similar) and
//     it ignores cognitive load.
//   - DegreeBiased: patterns grown around high-degree nodes — a common
//     heuristic for "important" structures in large networks.
//
// All selectors respect the same pattern.Budget as the data-driven
// frameworks and are deterministic per seed.
package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// sizeToNodes converts an edge budget to a node count for the connected-
// subgraph sampler: a connected subgraph with n nodes has ≥ n-1 edges.
func sampleSized(rng *rand.Rand, g *graph.Graph, b pattern.Budget) *pattern.Pattern {
	// Target nodes between MinSize+1 (a tree with MinSize edges) and
	// MaxSize+1, then verify the edge budget.
	nodes := b.MinSize + 1 + rng.Intn(b.MaxSize-b.MinSize+1)
	sub := datagen.RandomConnectedSubgraph(rng, g, nodes)
	if sub == nil {
		return nil
	}
	p := pattern.New(sub, "baseline")
	if !b.Admits(p) {
		return nil
	}
	return p
}

// Random selects up to b.Count random connected subgraphs from the corpus.
func Random(c *graph.Corpus, b pattern.Budget, seed int64) ([]*pattern.Pattern, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty corpus")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var out []*pattern.Pattern
	for attempt := 0; attempt < 50*b.Count && len(out) < b.Count; attempt++ {
		g := c.Graph(rng.Intn(c.Len()))
		p := sampleSized(rng, g, b)
		if p == nil {
			continue
		}
		p.Source = "baseline:random"
		out = append(out, p)
		out = pattern.Dedup(out)
	}
	return out, nil
}

// TopFrequent samples candidate subgraphs from the corpus, counts each
// candidate's corpus support (graphs containing it), and returns the
// b.Count most frequent. samples controls the candidate pool size (0 =
// 30·b.Count).
func TopFrequent(c *graph.Corpus, b pattern.Budget, seed int64, samples int) ([]*pattern.Pattern, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty corpus")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if samples == 0 {
		samples = 30 * b.Count
	}
	rng := rand.New(rand.NewSource(seed))
	byCanon := make(map[string]*pattern.Pattern)
	for i := 0; i < samples; i++ {
		g := c.Graph(rng.Intn(c.Len()))
		p := sampleSized(rng, g, b)
		if p == nil {
			continue
		}
		if _, dup := byCanon[p.Canon()]; !dup {
			p.Source = "baseline:frequent"
			byCanon[p.Canon()] = p
		}
	}
	cands := make([]*pattern.Pattern, 0, len(byCanon))
	for _, p := range byCanon {
		cands = append(cands, p)
	}
	// Exact support per candidate.
	opts := pattern.MatchOptions()
	for _, p := range cands {
		sup := 0
		c.Each(func(_ int, g *graph.Graph) {
			if isomorph.Exists(p.G, g, opts) {
				sup++
			}
		})
		p.Support = sup
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Support != cands[j].Support {
			return cands[i].Support > cands[j].Support
		}
		return cands[i].Canon() < cands[j].Canon()
	})
	if len(cands) > b.Count {
		cands = cands[:b.Count]
	}
	return cands, nil
}

// DegreeBiased grows patterns around the highest-degree nodes of a single
// network: for each hub, a breadth-first ball is truncated to the budget's
// edge range. Used as the network-side baseline against TATTOO.
func DegreeBiased(g *graph.Graph, b pattern.Budget, seed int64) ([]*pattern.Pattern, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("baseline: network has no edges")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Rank nodes by degree.
	order := make([]graph.NodeID, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	var out []*pattern.Pattern
	for _, hub := range order {
		if len(out) >= b.Count {
			break
		}
		target := b.MinSize + rng.Intn(b.MaxSize-b.MinSize+1)
		var edges []graph.EdgeID
		seen := map[graph.EdgeID]bool{}
		g.BFS(hub, func(v graph.NodeID, _ int) bool {
			ok := true
			g.VisitNeighbors(v, func(_ graph.NodeID, e graph.EdgeID) bool {
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
					if len(edges) >= target {
						ok = false
						return false
					}
				}
				return true
			})
			return ok
		})
		if len(edges) < b.MinSize {
			continue
		}
		sub, _ := g.SubgraphFromEdges(edges)
		sub.SetName(fmt.Sprintf("hub-%d", hub))
		p := pattern.New(sub, "baseline:degree")
		if b.Admits(p) && sub.IsConnected() {
			out = append(out, p)
			out = pattern.Dedup(out)
		}
	}
	return out, nil
}

// RandomNetwork selects random connected subgraphs from a single network —
// the network-side analogue of Random.
func RandomNetwork(g *graph.Graph, b pattern.Budget, seed int64) ([]*pattern.Pattern, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("baseline: network has no edges")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var out []*pattern.Pattern
	for attempt := 0; attempt < 50*b.Count && len(out) < b.Count; attempt++ {
		p := sampleSized(rng, g, b)
		if p == nil {
			continue
		}
		p.Source = "baseline:random-network"
		out = append(out, p)
		out = pattern.Dedup(out)
	}
	return out, nil
}
