package baseline

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func corpus() *graph.Corpus {
	return datagen.ChemicalCorpus(2, 25, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 20})
}

func budget() pattern.Budget {
	return pattern.Budget{Count: 6, MinSize: 4, MaxSize: 9}
}

func TestRandom(t *testing.T) {
	out, err := Random(corpus(), budget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 6 {
		t.Fatalf("selected %d", len(out))
	}
	seen := map[string]bool{}
	for _, p := range out {
		if p.Size() < 4 || p.Size() > 9 {
			t.Fatalf("size %d outside budget", p.Size())
		}
		if !p.G.IsConnected() {
			t.Fatal("disconnected pattern")
		}
		if seen[p.Canon()] {
			t.Fatal("duplicate pattern")
		}
		seen[p.Canon()] = true
		if p.Source != "baseline:random" {
			t.Fatalf("source = %q", p.Source)
		}
	}
	// Determinism.
	again, _ := Random(corpus(), budget(), 1)
	if len(again) != len(out) {
		t.Fatal("nondeterministic")
	}
	for i := range out {
		if out[i].Canon() != again[i].Canon() {
			t.Fatal("nondeterministic pattern")
		}
	}
}

func TestRandomErrors(t *testing.T) {
	if _, err := Random(graph.NewCorpus(), budget(), 1); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Random(corpus(), pattern.Budget{}, 1); err == nil {
		t.Fatal("invalid budget accepted")
	}
}

func TestTopFrequent(t *testing.T) {
	out, err := TopFrequent(corpus(), budget(), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("nothing selected")
	}
	// Supports are non-increasing.
	for i := 1; i < len(out); i++ {
		if out[i].Support > out[i-1].Support {
			t.Fatalf("supports not sorted: %d after %d", out[i].Support, out[i-1].Support)
		}
	}
	for _, p := range out {
		if p.Support < 1 {
			t.Fatalf("selected pattern with support %d", p.Support)
		}
	}
}

func TestTopFrequentBeatsRandomOnSupport(t *testing.T) {
	c := corpus()
	freq, err := TopFrequent(c, budget(), 5, 150)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Random(c, budget(), 5)
	if err != nil {
		t.Fatal(err)
	}
	meanSupport := func(ps []*pattern.Pattern) float64 {
		opts := pattern.MatchOptions()
		total := 0.0
		for _, p := range ps {
			total += pattern.GraphCoverage(p, c, opts)
		}
		return total / float64(len(ps))
	}
	if meanSupport(freq) < meanSupport(rnd) {
		t.Fatalf("frequent baseline (%v) must beat random (%v) on mean graph coverage",
			meanSupport(freq), meanSupport(rnd))
	}
}

func TestDegreeBiased(t *testing.T) {
	g := datagen.BarabasiAlbert(1, 300, 3)
	out, err := DegreeBiased(g, budget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("nothing selected")
	}
	for _, p := range out {
		if !strings.HasPrefix(p.Source, "baseline:degree") {
			t.Fatalf("source = %q", p.Source)
		}
		if p.Size() < 4 || p.Size() > 9 {
			t.Fatalf("size %d outside budget", p.Size())
		}
	}
	if _, err := DegreeBiased(graph.New("e"), budget(), 1); err == nil {
		t.Fatal("edgeless network accepted")
	}
}

func TestRandomNetwork(t *testing.T) {
	g := datagen.WattsStrogatz(2, 200, 4, 0.1)
	out, err := RandomNetwork(g, budget(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 || len(out) > 6 {
		t.Fatalf("selected %d", len(out))
	}
	for _, p := range out {
		if !p.G.IsConnected() {
			t.Fatal("disconnected")
		}
	}
	if _, err := RandomNetwork(graph.New("e"), budget(), 1); err == nil {
		t.Fatal("edgeless network accepted")
	}
	if _, err := RandomNetwork(g, pattern.Budget{Count: -1}, 1); err == nil {
		t.Fatal("invalid budget accepted")
	}
}
