package baseline

import (
	"sort"
	"time"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// ExhaustiveFSM mines frequent subgraphs level-wise (Apriori/FSG-style):
// level 1 is the frequent labeled edges; each level extends every frequent
// subgraph by one edge in all label-compatible ways (new pendant node, or
// closing an edge between existing nodes), deduplicates by canonical form,
// and keeps candidates whose exact corpus support meets minSupFrac.
// It returns the b.Count most frequent subgraphs within the budget's size
// range.
//
// This is the classical pattern-selection substrate that pre-CATAPULT
// data-driven VQIs relied on. Its candidate lattice grows combinatorially
// with pattern size — the cost CATAPULT's cluster-summarize-walk design
// exists to avoid — so the miner takes a time limit; when the limit
// expires it returns what it has found with truncated = true.
func ExhaustiveFSM(c *graph.Corpus, b pattern.Budget, minSupFrac float64, timeLimit time.Duration) (selected []*pattern.Pattern, truncated bool, err error) {
	if err := b.Validate(); err != nil {
		return nil, false, err
	}
	minSup := int(minSupFrac * float64(c.Len()))
	if minSup < 1 {
		minSup = 1
	}
	deadline := time.Now().Add(timeLimit)
	expired := func() bool { return timeLimit > 0 && time.Now().After(deadline) }

	// Level 1: frequent labeled edges.
	type triple struct{ a, e, b string }
	counts := make(map[triple]int)
	c.Each(func(_ int, g *graph.Graph) {
		seen := make(map[triple]bool)
		for _, ed := range g.Edges() {
			a, bb := g.NodeLabel(ed.U), g.NodeLabel(ed.V)
			if a > bb {
				a, bb = bb, a
			}
			seen[triple{a, ed.Label, bb}] = true
		}
		for tr := range seen {
			counts[tr]++
		}
	})
	var freqTriples []triple
	var level []*pattern.Pattern
	for tr, sup := range counts {
		if sup < minSup {
			continue
		}
		freqTriples = append(freqTriples, tr)
		g := graph.New("fsm")
		u := g.AddNode(tr.a)
		v := g.AddNode(tr.b)
		g.MustAddEdge(u, v, tr.e)
		p := pattern.New(g, "baseline:fsm")
		p.Support = sup
		level = append(level, p)
	}
	sort.Slice(freqTriples, func(i, j int) bool {
		if freqTriples[i].a != freqTriples[j].a {
			return freqTriples[i].a < freqTriples[j].a
		}
		if freqTriples[i].e != freqTriples[j].e {
			return freqTriples[i].e < freqTriples[j].e
		}
		return freqTriples[i].b < freqTriples[j].b
	})
	edgeLabels := make(map[string]bool)
	for _, tr := range freqTriples {
		edgeLabels[tr.e] = true
	}
	var frequentAll []*pattern.Pattern
	frequentAll = append(frequentAll, level...)

	opts := isomorph.Options{MaxEmbeddings: 1, MaxSteps: 200000}
	for size := 2; size <= b.MaxSize && len(level) > 0; size++ {
		if expired() {
			truncated = true
			break
		}
		cands := make(map[string]*graph.Graph)
		for _, p := range level {
			if expired() {
				truncated = true
				break
			}
			g := p.G
			// Extension (a): pendant node via a frequent triple.
			for v := 0; v < g.NumNodes(); v++ {
				vl := g.NodeLabel(v)
				for _, tr := range freqTriples {
					var leaves []string
					if tr.a == vl {
						leaves = append(leaves, tr.b)
					}
					if tr.b == vl && tr.b != tr.a {
						leaves = append(leaves, tr.a)
					}
					for _, ll := range leaves {
						ext := g.Clone()
						leaf := ext.AddNode(ll)
						ext.MustAddEdge(v, leaf, tr.e)
						key := canon.String(ext)
						if _, dup := cands[key]; !dup {
							cands[key] = ext
						}
					}
				}
			}
			// Extension (b): close an edge between existing nodes.
			for u := 0; u < g.NumNodes(); u++ {
				for v := u + 1; v < g.NumNodes(); v++ {
					if g.HasEdge(u, v) {
						continue
					}
					for el := range edgeLabels {
						ext := g.Clone()
						ext.MustAddEdge(u, v, el)
						key := canon.String(ext)
						if _, dup := cands[key]; !dup {
							cands[key] = ext
						}
					}
				}
			}
		}
		// Exact support counting — the expensive part.
		level = level[:0]
		for _, g := range cands {
			if expired() {
				truncated = true
				break
			}
			sup := 0
			c.Each(func(_ int, dg *graph.Graph) {
				if isomorph.Exists(g, dg, opts) {
					sup++
				}
			})
			if sup >= minSup {
				p := pattern.New(g, "baseline:fsm")
				p.Support = sup
				level = append(level, p)
			}
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Canon() < level[j].Canon() })
		frequentAll = append(frequentAll, level...)
	}

	// Top-b.Count by support within the budget range.
	var admissible []*pattern.Pattern
	for _, p := range frequentAll {
		if b.Admits(p) {
			admissible = append(admissible, p)
		}
	}
	sort.Slice(admissible, func(i, j int) bool {
		if admissible[i].Support != admissible[j].Support {
			return admissible[i].Support > admissible[j].Support
		}
		return admissible[i].Canon() < admissible[j].Canon()
	})
	if len(admissible) > b.Count {
		admissible = admissible[:b.Count]
	}
	return admissible, truncated, nil
}
