package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomVectors(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestMatrixMatchesSequential(t *testing.T) {
	vecs := randomVectors(60, 5, 1)
	want := Matrix(vecs, Euclidean, 1)
	for _, workers := range []int{0, 2, 8} {
		got := Matrix(vecs, Euclidean, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: matrix differs from sequential", workers)
		}
	}
	for i := range want {
		for j := range want[i] {
			if want[i][j] != Euclidean(vecs[i], vecs[j]) {
				t.Fatalf("cell (%d,%d) wrong", i, j)
			}
		}
	}
}

func TestKMedoidsWorkerCountInvariant(t *testing.T) {
	vecs := randomVectors(120, 4, 7)
	want, err := KMedoidsN(vecs, 6, Euclidean, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := KMedoidsN(vecs, 6, Euclidean, 3, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: clustering differs from sequential", workers)
		}
	}
}

func TestAgglomerativeWorkerCountInvariant(t *testing.T) {
	vecs := randomVectors(48, 3, 11)
	want, err := AgglomerativeN(vecs, 4, Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3, 8} {
		got, err := AgglomerativeN(vecs, 4, Euclidean, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: clustering differs from sequential", workers)
		}
	}
}

func TestSilhouetteWorkerCountInvariant(t *testing.T) {
	vecs := randomVectors(90, 4, 5)
	c, err := KMedoidsN(vecs, 4, Euclidean, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := SilhouetteScoreN(c, vecs, Euclidean, 1)
	for _, workers := range []int{0, 2, 8} {
		if got := SilhouetteScoreN(c, vecs, Euclidean, workers); got != want {
			t.Fatalf("workers=%d: silhouette %v != sequential %v", workers, got, want)
		}
	}
}

func TestSelectKWorkerCountInvariant(t *testing.T) {
	vecs := twoBlobs()
	wantK, wantC, err := SelectKN(vecs, 5, Euclidean, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		k, c, err := SelectKN(vecs, 5, Euclidean, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if k != wantK || !reflect.DeepEqual(c, wantC) {
			t.Fatalf("workers=%d: SelectK differs from sequential", workers)
		}
	}
}
