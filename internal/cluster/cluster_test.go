package cluster

import (
	"math"
	"testing"
)

// twoBlobs returns 10 vectors: 5 near the origin, 5 near (10, 10).
func twoBlobs() [][]float64 {
	return [][]float64{
		{0, 0}, {0.5, 0}, {0, 0.5}, {0.4, 0.4}, {0.1, 0.2},
		{10, 10}, {10.5, 10}, {10, 10.5}, {10.2, 10.3}, {9.8, 9.9},
	}
}

func TestDistances(t *testing.T) {
	a := []float64{1, 0, 1}
	b := []float64{1, 1, 0}
	if d := Euclidean(a, a); d != 0 {
		t.Fatalf("Euclidean self = %v", d)
	}
	if d := Euclidean(a, b); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("Euclidean = %v", d)
	}
	if d := Cosine(a, a); math.Abs(d) > 1e-12 {
		t.Fatalf("Cosine self = %v", d)
	}
	if d := Cosine(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("Cosine = %v, want 0.5", d)
	}
	if d := Cosine([]float64{0, 0}, []float64{0, 0}); d != 0 {
		t.Fatalf("Cosine zero-zero = %v", d)
	}
	if d := Cosine([]float64{0, 0}, []float64{1, 0}); d != 1 {
		t.Fatalf("Cosine zero-nonzero = %v", d)
	}
	// Jaccard: sets {0,2} and {0,1} → intersection 1, union 3.
	if d := Jaccard(a, b); math.Abs(d-(1-1.0/3)) > 1e-12 {
		t.Fatalf("Jaccard = %v", d)
	}
	if d := Jaccard([]float64{0}, []float64{0}); d != 0 {
		t.Fatalf("Jaccard empty-empty = %v", d)
	}
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	vecs := twoBlobs()
	c, err := KMedoids(vecs, 2, Euclidean, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 2 {
		t.Fatalf("K = %d", c.K)
	}
	// All of the first five must share a cluster, all of the last five the
	// other.
	first := c.Assignments[0]
	for i := 1; i < 5; i++ {
		if c.Assignments[i] != first {
			t.Fatalf("blob 1 split: %v", c.Assignments)
		}
	}
	second := c.Assignments[5]
	if second == first {
		t.Fatalf("blobs merged: %v", c.Assignments)
	}
	for i := 6; i < 10; i++ {
		if c.Assignments[i] != second {
			t.Fatalf("blob 2 split: %v", c.Assignments)
		}
	}
	// Medoids are members of their own clusters.
	for ci, m := range c.Medoids {
		if c.Assignments[m] != ci {
			t.Fatalf("medoid %d not in its own cluster", ci)
		}
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	if _, err := KMedoids(nil, 2, Euclidean, 1, 0); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMedoids(twoBlobs(), 0, Euclidean, 1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	// k > n clamps to n.
	c, err := KMedoids([][]float64{{0}, {1}}, 5, Euclidean, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 2 {
		t.Fatalf("clamped K = %d", c.K)
	}
	// k = 1 puts everything together.
	c, _ = KMedoids(twoBlobs(), 1, Euclidean, 1, 0)
	for _, a := range c.Assignments {
		if a != 0 {
			t.Fatal("k=1 must assign everything to cluster 0")
		}
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	vecs := twoBlobs()
	a, _ := KMedoids(vecs, 3, Euclidean, 7, 0)
	b, _ := KMedoids(vecs, 3, Euclidean, 7, 0)
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed must reproduce")
		}
	}
}

func TestAgglomerativeSeparatesBlobs(t *testing.T) {
	c, err := Agglomerative(twoBlobs(), 2, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	first := c.Assignments[0]
	for i := 1; i < 5; i++ {
		if c.Assignments[i] != first {
			t.Fatalf("blob 1 split: %v", c.Assignments)
		}
	}
	if c.Assignments[5] == first {
		t.Fatal("blobs merged")
	}
	if _, err := Agglomerative(nil, 2, Euclidean); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Agglomerative(twoBlobs(), -1, Euclidean); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestMembersAndSizes(t *testing.T) {
	c, _ := KMedoids(twoBlobs(), 2, Euclidean, 1, 0)
	sizes := c.Sizes()
	if sizes[0]+sizes[1] != 10 {
		t.Fatalf("sizes = %v", sizes)
	}
	total := 0
	for ci := 0; ci < c.K; ci++ {
		total += len(c.Members(ci))
	}
	if total != 10 {
		t.Fatalf("Members total = %d", total)
	}
}

func TestAssignNearest(t *testing.T) {
	vecs := twoBlobs()
	c, _ := KMedoids(vecs, 2, Euclidean, 1, 0)
	nearOrigin := c.AssignNearest([]float64{0.2, 0.1}, vecs, Euclidean)
	nearFar := c.AssignNearest([]float64{9.9, 10.1}, vecs, Euclidean)
	if nearOrigin == nearFar {
		t.Fatal("new points must land in different clusters")
	}
	if nearOrigin != c.Assignments[0] {
		t.Fatal("origin-ish point must join the origin blob")
	}
}

func TestSelectK(t *testing.T) {
	// Two clean blobs: silhouette must pick k=2.
	k, c, err := SelectK(twoBlobs(), 5, Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("SelectK = %d, want 2", k)
	}
	if c == nil || c.K != 2 {
		t.Fatal("clustering missing")
	}
	// Three blobs → k=3.
	three := append(twoBlobs(),
		[]float64{-10, 10}, []float64{-10.2, 10.1}, []float64{-9.9, 9.8},
		[]float64{-10.1, 10.3}, []float64{-9.8, 10.2})
	k3, _, err := SelectK(three, 6, Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k3 != 3 {
		t.Fatalf("SelectK = %d, want 3", k3)
	}
	if _, _, err := SelectK([][]float64{{1}}, 3, Euclidean, 1); err == nil {
		t.Fatal("single vector accepted")
	}
}

func TestSilhouette(t *testing.T) {
	vecs := twoBlobs()
	good, _ := KMedoids(vecs, 2, Euclidean, 1, 0)
	if s := SilhouetteScore(good, vecs, Euclidean); s < 0.8 {
		t.Fatalf("well-separated blobs silhouette = %v, want high", s)
	}
	// A deliberately bad clustering scores worse.
	bad := &Clustering{Assignments: []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}, Medoids: []int{0, 5}, K: 2}
	if SilhouetteScore(bad, vecs, Euclidean) >= SilhouetteScore(good, vecs, Euclidean) {
		t.Fatal("bad clustering must score below good one")
	}
	if SilhouetteScore(good, nil, Euclidean) != 0 {
		t.Fatal("empty vectors silhouette must be 0")
	}
	one, _ := KMedoids(vecs, 1, Euclidean, 1, 0)
	if SilhouetteScore(one, vecs, Euclidean) != 0 {
		t.Fatal("k=1 silhouette must be 0")
	}
}
