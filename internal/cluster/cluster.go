// Package cluster groups data graphs by feature-vector similarity.
//
// CATAPULT's first stage partitions the corpus into clusters of
// structurally similar graphs (each later summarized into a cluster summary
// graph). Graphs are embedded as frequent-tree feature vectors (package
// fct) and clustered here. Two algorithms are provided — k-medoids (PAM
// -style alternation) and average-linkage agglomerative clustering — plus
// the incremental nearest-medoid assignment MIDAS uses to absorb batch
// insertions without re-clustering.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distance is a dissimilarity on feature vectors; 0 means identical.
type Distance func(a, b []float64) float64

// Euclidean is the L2 distance.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine is 1 minus cosine similarity; two zero vectors have distance 0, a
// zero vector against a non-zero one has distance 1.
func Cosine(a, b []float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// Jaccard treats vectors as binary sets (non-zero = member) and returns 1
// minus the Jaccard index. Natural for the binary frequent-tree features.
func Jaccard(a, b []float64) float64 {
	inter, union := 0, 0
	for i := range a {
		x, y := a[i] != 0, b[i] != 0
		if x && y {
			inter++
		}
		if x || y {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Clustering is the result of a clustering run.
type Clustering struct {
	// Assignments maps item index -> cluster index in [0, K).
	Assignments []int
	// Medoids maps cluster index -> item index of the cluster's medoid.
	Medoids []int
	// K is the number of clusters.
	K int
}

// Members returns the item indices of the given cluster, ascending.
func (c *Clustering) Members(cluster int) []int {
	var out []int
	for i, a := range c.Assignments {
		if a == cluster {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns the size of every cluster.
func (c *Clustering) Sizes() []int {
	s := make([]int, c.K)
	for _, a := range c.Assignments {
		s[a]++
	}
	return s
}

// KMedoids clusters the vectors into k groups using PAM-style alternation:
// greedy farthest-point seeding, then repeated (assign to nearest medoid,
// recompute medoid as the member minimizing total intra-cluster distance)
// until stable or maxIter rounds. Deterministic for a given seed.
func KMedoids(vectors [][]float64, k int, dist Distance, seed int64, maxIter int) (*Clustering, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no vectors")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	rng := rand.New(rand.NewSource(seed))

	// Farthest-point seeding from a random start.
	medoids := []int{rng.Intn(n)}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for _, m := range medoids {
				if dm := dist(vectors[i], vectors[m]); dm < d {
					d = dm
				}
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		medoids = append(medoids, best)
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		// Assignment step.
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for ci, m := range medoids {
				if d := dist(vectors[i], vectors[m]); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Medoid update step.
		for ci := range medoids {
			var members []int
			for i, a := range assign {
				if a == ci {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			best, bestCost := medoids[ci], math.Inf(1)
			for _, cand := range members {
				cost := 0.0
				for _, m := range members {
					cost += dist(vectors[cand], vectors[m])
				}
				if cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			if medoids[ci] != best {
				medoids[ci] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return &Clustering{Assignments: assign, Medoids: medoids, K: k}, nil
}

// Agglomerative performs average-linkage agglomerative clustering down to k
// clusters, then reports each cluster's medoid. Deterministic.
func Agglomerative(vectors [][]float64, k int, dist Distance) (*Clustering, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no vectors")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	if k > n {
		k = n
	}
	// Precompute pairwise distances.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = dist(vectors[i], vectors[j])
		}
	}
	// Active clusters as member lists.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	linkage := func(a, b []int) float64 {
		s := 0.0
		for _, x := range a {
			for _, y := range b {
				s += d[x][y]
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(clusters) > k {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if l := linkage(clusters[i], clusters[j]); l < bd {
					bi, bj, bd = i, j, l
				}
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	out := &Clustering{Assignments: make([]int, n), Medoids: make([]int, len(clusters)), K: len(clusters)}
	for ci, members := range clusters {
		sort.Ints(members)
		for _, m := range members {
			out.Assignments[m] = ci
		}
		out.Medoids[ci] = medoidOf(members, d)
	}
	return out, nil
}

func medoidOf(members []int, d [][]float64) int {
	best, bestCost := members[0], math.Inf(1)
	for _, cand := range members {
		cost := 0.0
		for _, m := range members {
			cost += d[cand][m]
		}
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best
}

// AssignNearest returns the cluster whose medoid is closest to vec — the
// incremental assignment MIDAS performs for each newly added graph.
func (c *Clustering) AssignNearest(vec []float64, vectors [][]float64, dist Distance) int {
	best, bestD := 0, math.Inf(1)
	for ci, m := range c.Medoids {
		if d := dist(vec, vectors[m]); d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// SelectK picks a cluster count in [2, maxK] by maximizing the silhouette
// score of a k-medoids clustering at each k — the data-driven alternative
// to the √N heuristic for CATAPULT's first stage. Returns the chosen k and
// its clustering. maxK is clamped to len(vectors).
func SelectK(vectors [][]float64, maxK int, dist Distance, seed int64) (int, *Clustering, error) {
	if len(vectors) < 2 {
		return 0, nil, fmt.Errorf("cluster: need at least 2 vectors to select k")
	}
	if maxK > len(vectors) {
		maxK = len(vectors)
	}
	if maxK < 2 {
		maxK = 2
	}
	bestK, bestScore := -1, math.Inf(-1)
	var bestC *Clustering
	for k := 2; k <= maxK; k++ {
		c, err := KMedoids(vectors, k, dist, seed, 0)
		if err != nil {
			return 0, nil, err
		}
		if s := SilhouetteScore(c, vectors, dist); s > bestScore {
			bestK, bestScore, bestC = k, s, c
		}
	}
	return bestK, bestC, nil
}

// SilhouetteScore computes the mean silhouette coefficient of the
// clustering, a standard internal quality measure in [-1, 1]; higher means
// tighter, better-separated clusters. Single-member clusters contribute 0.
func SilhouetteScore(c *Clustering, vectors [][]float64, dist Distance) float64 {
	n := len(vectors)
	if n == 0 || c.K < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		own := c.Assignments[i]
		var a float64
		ownCount := 0
		bScores := make([]float64, c.K)
		bCounts := make([]int, c.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dij := dist(vectors[i], vectors[j])
			if c.Assignments[j] == own {
				a += dij
				ownCount++
			} else {
				bScores[c.Assignments[j]] += dij
				bCounts[c.Assignments[j]]++
			}
		}
		if ownCount == 0 {
			continue // singleton: silhouette 0
		}
		a /= float64(ownCount)
		b := math.Inf(1)
		for ci := 0; ci < c.K; ci++ {
			if bCounts[ci] > 0 {
				if avg := bScores[ci] / float64(bCounts[ci]); avg < b {
					b = avg
				}
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}
