// Package cluster groups data graphs by feature-vector similarity.
//
// CATAPULT's first stage partitions the corpus into clusters of
// structurally similar graphs (each later summarized into a cluster summary
// graph). Graphs are embedded as frequent-tree feature vectors (package
// fct) and clustered here. Two algorithms are provided — k-medoids (PAM
// -style alternation) and average-linkage agglomerative clustering — plus
// the incremental nearest-medoid assignment MIDAS uses to absorb batch
// insertions without re-clustering.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/par"
)

// Distance is a dissimilarity on feature vectors; 0 means identical.
type Distance func(a, b []float64) float64

// Euclidean is the L2 distance.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine is 1 minus cosine similarity; two zero vectors have distance 0, a
// zero vector against a non-zero one has distance 1.
func Cosine(a, b []float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// Jaccard treats vectors as binary sets (non-zero = member) and returns 1
// minus the Jaccard index. Natural for the binary frequent-tree features.
func Jaccard(a, b []float64) float64 {
	inter, union := 0, 0
	for i := range a {
		x, y := a[i] != 0, b[i] != 0
		if x && y {
			inter++
		}
		if x || y {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Clustering is the result of a clustering run.
type Clustering struct {
	// Assignments maps item index -> cluster index in [0, K).
	Assignments []int
	// Medoids maps cluster index -> item index of the cluster's medoid.
	Medoids []int
	// K is the number of clusters.
	K int
}

// Members returns the item indices of the given cluster, ascending.
func (c *Clustering) Members(cluster int) []int {
	var out []int
	for i, a := range c.Assignments {
		if a == cluster {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns the size of every cluster.
func (c *Clustering) Sizes() []int {
	s := make([]int, c.K)
	for _, a := range c.Assignments {
		s[a]++
	}
	return s
}

// Matrix computes the full pairwise distance matrix on the shared par
// pool, one row per task. This is the dominant cost of Agglomerative and
// of KMedoids at modest n; rows are slot-indexed so the result is
// identical at any worker count. workers <= 0 means GOMAXPROCS.
func Matrix(vectors [][]float64, dist Distance, workers int) [][]float64 {
	n := len(vectors)
	m := make([][]float64, n)
	par.ForEachN(n, workers, func(i int) {
		row := make([]float64, n)
		for j := range row {
			row[j] = dist(vectors[i], vectors[j])
		}
		m[i] = row
	})
	return m
}

// matrixMaxN bounds the n for which KMedoidsN materializes the full n×n
// distance matrix (8 bytes per cell: 2048² ≈ 33 MB). Beyond it distances
// are recomputed on the fly, keeping memory O(n) for corpus-scale runs.
const matrixMaxN = 2048

// KMedoids clusters the vectors into k groups using PAM-style alternation:
// greedy farthest-point seeding, then repeated (assign to nearest medoid,
// recompute medoid as the member minimizing total intra-cluster distance)
// until stable or maxIter rounds. Deterministic for a given seed.
// Equivalent to KMedoidsN with workers = GOMAXPROCS.
func KMedoids(vectors [][]float64, k int, dist Distance, seed int64, maxIter int) (*Clustering, error) {
	return KMedoidsN(vectors, k, dist, seed, maxIter, 0)
}

// KMedoidsN is KMedoids with an explicit worker count for every distance
// sweep (seeding, assignment, per-cluster medoid update). Results are
// byte-identical at any worker count: each sweep writes only slot-indexed
// state and reductions run sequentially in index order.
func KMedoidsN(vectors [][]float64, k int, dist Distance, seed int64, maxIter, workers int) (*Clustering, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no vectors")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	rng := rand.New(rand.NewSource(seed))

	// Distance access: memoized matrix for modest n, on-the-fly beyond.
	var mat [][]float64
	if n <= matrixMaxN {
		mat = Matrix(vectors, dist, workers)
	}
	d := func(i, j int) float64 {
		if mat != nil {
			return mat[i][j]
		}
		return dist(vectors[i], vectors[j])
	}

	// Farthest-point seeding from a random start, with the distance-to-
	// nearest-medoid array maintained incrementally (min is associative, so
	// the running minimum equals the original per-i full minimum exactly).
	start := rng.Intn(n)
	minD := make([]float64, n)
	par.ForEachChunk(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			minD[i] = d(i, start)
		}
	})
	medoids := []int{start}
	for len(medoids) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if minD[i] > bestD {
				best, bestD = i, minD[i]
			}
		}
		medoids = append(medoids, best)
		if len(medoids) < k {
			par.ForEachChunk(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if dm := d(i, best); dm < minD[i] {
						minD[i] = dm
					}
				}
			})
		}
	}

	assign := make([]int, n)
	newAssign := make([]int, n)
	newMedoids := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		// Assignment step: each item independently finds its nearest medoid.
		par.ForEachChunk(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				best, bestD := 0, math.Inf(1)
				for ci, m := range medoids {
					if dm := d(i, m); dm < bestD {
						best, bestD = ci, dm
					}
				}
				newAssign[i] = best
			}
		})
		changed := false
		for i := 0; i < n; i++ {
			if assign[i] != newAssign[i] {
				assign[i] = newAssign[i]
				changed = true
			}
		}
		// Medoid update step: clusters are independent of each other.
		par.ForEachN(k, workers, func(ci int) {
			var members []int
			for i, a := range assign {
				if a == ci {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				newMedoids[ci] = medoids[ci]
				return
			}
			best, bestCost := medoids[ci], math.Inf(1)
			for _, cand := range members {
				cost := 0.0
				for _, m := range members {
					cost += d(cand, m)
				}
				if cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			newMedoids[ci] = best
		})
		for ci := range medoids {
			if medoids[ci] != newMedoids[ci] {
				medoids[ci] = newMedoids[ci]
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return &Clustering{Assignments: assign, Medoids: medoids, K: k}, nil
}

// Agglomerative performs average-linkage agglomerative clustering down to k
// clusters, then reports each cluster's medoid. Deterministic. Equivalent
// to AgglomerativeN with workers = GOMAXPROCS.
func Agglomerative(vectors [][]float64, k int, dist Distance) (*Clustering, error) {
	return AgglomerativeN(vectors, k, dist, 0)
}

// AgglomerativeN is Agglomerative with an explicit worker count for the
// distance matrix and the per-round closest-pair search. The merge order is
// identical at any worker count: each row's best partner is computed
// independently, then rows are reduced sequentially in index order with the
// same strict-< tie-breaking as the sequential scan.
func AgglomerativeN(vectors [][]float64, k int, dist Distance, workers int) (*Clustering, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no vectors")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	if k > n {
		k = n
	}
	// Precompute pairwise distances on the pool.
	d := Matrix(vectors, dist, workers)
	// Active clusters as member lists.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	linkage := func(a, b []int) float64 {
		s := 0.0
		for _, x := range a {
			for _, y := range b {
				s += d[x][y]
			}
		}
		return s / float64(len(a)*len(b))
	}
	type best struct {
		j int
		l float64
	}
	for len(clusters) > k {
		// Per-row best partner, fanned out; ties within a row resolve to the
		// lowest j (strict <), matching the sequential row-major scan.
		rows := par.Map(len(clusters)-1, workers, func(i int) best {
			b := best{j: -1, l: math.Inf(1)}
			for j := i + 1; j < len(clusters); j++ {
				if l := linkage(clusters[i], clusters[j]); l < b.l {
					b = best{j: j, l: l}
				}
			}
			return b
		})
		bi, bj, bd := -1, -1, math.Inf(1)
		for i, b := range rows {
			if b.j >= 0 && b.l < bd {
				bi, bj, bd = i, b.j, b.l
			}
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	out := &Clustering{Assignments: make([]int, n), Medoids: make([]int, len(clusters)), K: len(clusters)}
	for ci, members := range clusters {
		sort.Ints(members)
		for _, m := range members {
			out.Assignments[m] = ci
		}
		out.Medoids[ci] = medoidOf(members, d)
	}
	return out, nil
}

func medoidOf(members []int, d [][]float64) int {
	best, bestCost := members[0], math.Inf(1)
	for _, cand := range members {
		cost := 0.0
		for _, m := range members {
			cost += d[cand][m]
		}
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best
}

// AssignNearest returns the cluster whose medoid is closest to vec — the
// incremental assignment MIDAS performs for each newly added graph.
func (c *Clustering) AssignNearest(vec []float64, vectors [][]float64, dist Distance) int {
	best, bestD := 0, math.Inf(1)
	for ci, m := range c.Medoids {
		if d := dist(vec, vectors[m]); d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// SelectK picks a cluster count in [2, maxK] by maximizing the silhouette
// score of a k-medoids clustering at each k — the data-driven alternative
// to the √N heuristic for CATAPULT's first stage. Returns the chosen k and
// its clustering. maxK is clamped to len(vectors).
func SelectK(vectors [][]float64, maxK int, dist Distance, seed int64) (int, *Clustering, error) {
	return SelectKN(vectors, maxK, dist, seed, 0)
}

// SelectKN is SelectK with an explicit worker count threaded into every
// clustering and silhouette evaluation.
func SelectKN(vectors [][]float64, maxK int, dist Distance, seed int64, workers int) (int, *Clustering, error) {
	if len(vectors) < 2 {
		return 0, nil, fmt.Errorf("cluster: need at least 2 vectors to select k")
	}
	if maxK > len(vectors) {
		maxK = len(vectors)
	}
	if maxK < 2 {
		maxK = 2
	}
	bestK, bestScore := -1, math.Inf(-1)
	var bestC *Clustering
	for k := 2; k <= maxK; k++ {
		c, err := KMedoidsN(vectors, k, dist, seed, 0, workers)
		if err != nil {
			return 0, nil, err
		}
		if s := SilhouetteScoreN(c, vectors, dist, workers); s > bestScore {
			bestK, bestScore, bestC = k, s, c
		}
	}
	return bestK, bestC, nil
}

// SilhouetteScore computes the mean silhouette coefficient of the
// clustering, a standard internal quality measure in [-1, 1]; higher means
// tighter, better-separated clusters. Single-member clusters contribute 0.
func SilhouetteScore(c *Clustering, vectors [][]float64, dist Distance) float64 {
	return SilhouetteScoreN(c, vectors, dist, 0)
}

// SilhouetteScoreN is SilhouetteScore with an explicit worker count. Each
// item's silhouette coefficient (an O(n) distance sweep) is an independent
// task; per-item results are collected slot-indexed and summed sequentially
// in index order, so the score is bit-identical at any worker count.
func SilhouetteScoreN(c *Clustering, vectors [][]float64, dist Distance, workers int) float64 {
	n := len(vectors)
	if n == 0 || c.K < 2 {
		return 0
	}
	coeffs := par.Map(n, workers, func(i int) float64 {
		own := c.Assignments[i]
		var a float64
		ownCount := 0
		bScores := make([]float64, c.K)
		bCounts := make([]int, c.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dij := dist(vectors[i], vectors[j])
			if c.Assignments[j] == own {
				a += dij
				ownCount++
			} else {
				bScores[c.Assignments[j]] += dij
				bCounts[c.Assignments[j]]++
			}
		}
		if ownCount == 0 {
			return 0 // singleton: silhouette 0
		}
		a /= float64(ownCount)
		b := math.Inf(1)
		for ci := 0; ci < c.K; ci++ {
			if bCounts[ci] > 0 {
				if avg := bScores[ci] / float64(bCounts[ci]); avg < b {
					b = avg
				}
			}
		}
		if math.IsInf(b, 1) {
			return 0
		}
		if m := math.Max(a, b); m > 0 {
			return (b - a) / m
		}
		return 0
	})
	total := 0.0
	for _, s := range coeffs {
		total += s
	}
	return total / float64(n)
}
