package gio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// WriteDOT writes g in Graphviz DOT format, for eyeballing patterns,
// cluster summary graphs, and summaries with standard tooling
// (`dot -Tsvg`). Labels are quoted and escaped.
func WriteDOT(w io.Writer, g *graph.Graph) error {
	return WriteDOTHighlighted(w, g, nil, nil)
}

// WriteDOTHighlighted is WriteDOT with optional emphasis: the given nodes
// and edges (e.g. a query match from package results) are drawn bold and
// colored. Either slice may be nil.
func WriteDOTHighlighted(w io.Writer, g *graph.Graph, hiNodes []graph.NodeID, hiEdges []graph.EdgeID) error {
	bw := bufio.NewWriter(w)
	hn := make(map[graph.NodeID]bool, len(hiNodes))
	for _, n := range hiNodes {
		hn[n] = true
	}
	he := make(map[graph.EdgeID]bool, len(hiEdges))
	for _, e := range hiEdges {
		he[e] = true
	}
	fmt.Fprintf(bw, "graph %s {\n", dotID(g.Name()))
	fmt.Fprintln(bw, "  node [shape=circle fontsize=10];")
	for v := 0; v < g.NumNodes(); v++ {
		attrs := fmt.Sprintf("label=%s", dotID(g.NodeLabel(v)))
		if hn[v] {
			attrs += " style=bold color=crimson"
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, attrs)
	}
	for id, e := range g.Edges() {
		attrs := ""
		if e.Label != "" {
			attrs = fmt.Sprintf(" [label=%s", dotID(e.Label))
			if he[id] {
				attrs += " style=bold color=crimson"
			}
			attrs += "]"
		} else if he[id] {
			attrs = " [style=bold color=crimson]"
		}
		fmt.Fprintf(bw, "  n%d -- n%d%s;\n", e.U, e.V, attrs)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// dotID quotes a string as a DOT identifier.
func dotID(s string) string {
	if s == "" {
		return `"?"`
	}
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s) + `"`
}
