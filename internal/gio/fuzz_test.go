package gio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadLG checks that the parser never panics and that anything it
// accepts round-trips exactly.
func FuzzReadLG(f *testing.F) {
	f.Add("t # a\nv 0 C\nv 1 N\ne 0 1 -\n")
	f.Add("t # first\nv 0 C\nt # second\nv 0 O\n")
	f.Add("// comment\n\nt x\nv 0 A\n")
	f.Add("v 0 C\n")
	f.Add("t # a\nv 5 C\n")
	f.Add("e 0 1 x\n")
	f.Add("t # a\nv 0 C\nv 1 C\ne 0 1 -\ne 1 0 -\n")
	f.Add("t # \x00weird\nv 0 \xff\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ReadLG(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteLG(&buf, c); err != nil {
			t.Fatalf("accepted corpus failed to serialize: %v", err)
		}
		back, err := ReadLG(&buf)
		if err != nil {
			// Inputs with whitespace-bearing labels can serialize into
			// unparseable lines; the writer's output must still parse for
			// inputs whose labels were single tokens. Detect that case.
			for i := 0; i < c.Len(); i++ {
				g := c.Graph(i)
				for v := 0; v < g.NumNodes(); v++ {
					if strings.ContainsAny(g.NodeLabel(v), " \t") {
						return
					}
				}
				for _, e := range g.Edges() {
					if strings.ContainsAny(e.Label, " \t") {
						return
					}
				}
				if strings.ContainsAny(g.Name(), "\n") {
					return
				}
			}
			t.Fatalf("round trip of accepted corpus failed: %v", err)
		}
		if back.Len() != c.Len() {
			t.Fatalf("round trip changed corpus size: %d -> %d", c.Len(), back.Len())
		}
	})
}

// FuzzGraphJSON checks JSON decode robustness and accepted-input
// round-tripping.
func FuzzGraphJSON(f *testing.F) {
	f.Add([]byte(`{"name":"a","nodes":["C","N"],"edges":[{"u":0,"v":1,"label":"-"}]}`))
	f.Add([]byte(`{"name":"","nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":["C"],"edges":[{"u":0,"v":9}]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalGraphJSON(data)
		if err != nil {
			return
		}
		out, err := MarshalGraphJSON(g)
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		back, err := UnmarshalGraphJSON(out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Dump() != g.Dump() {
			t.Fatal("round trip changed the graph")
		}
	})
}
