package gio

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func sampleCorpus() *graph.Corpus {
	c := graph.NewCorpus()
	g1 := graph.New("mol1")
	g1.AddNode("C")
	g1.AddNode("N")
	g1.AddNode("O")
	g1.MustAddEdge(0, 1, "single")
	g1.MustAddEdge(1, 2, "double")
	c.MustAdd(g1)
	g2 := graph.New("mol2")
	g2.AddNode("C")
	c.MustAdd(g2)
	return c
}

func TestLGRoundTrip(t *testing.T) {
	c := sampleCorpus()
	var buf bytes.Buffer
	if err := WriteLG(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost graphs: %d", back.Len())
	}
	for _, name := range c.Names() {
		a, _ := c.ByName(name)
		b, ok := back.ByName(name)
		if !ok {
			t.Fatalf("graph %q missing after round trip", name)
		}
		if a.Dump() != b.Dump() {
			t.Fatalf("graph %q changed:\n%s\nvs\n%s", name, a.Dump(), b.Dump())
		}
	}
}

func TestLGRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := graph.NewCorpus()
	labels := []string{"C", "N", "O", "S"}
	for gi := 0; gi < 40; gi++ {
		g := graph.New(strings.Repeat("g", 1) + "-" + string(rune('a'+gi%26)) + string(rune('0'+gi/26)))
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(i, j, "b")
				}
			}
		}
		c.MustAdd(g)
	}
	var buf bytes.Buffer
	if err := WriteLG(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("len %d vs %d", back.Len(), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if c.Graph(i).Dump() != back.Graph(i).Dump() {
			t.Fatalf("graph %d changed", i)
		}
	}
}

func TestReadLGTolerance(t *testing.T) {
	in := `
// a comment
t # first

v 0 C
v 1 N
e 0 1 -
t second
v 0 O
`
	c, err := ReadLG(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	g, _ := c.ByName("first")
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("first = %s", g)
	}
	if _, ok := c.ByName("second"); !ok {
		t.Fatal("bare 't name' header not accepted")
	}
}

func TestReadLGErrors(t *testing.T) {
	cases := map[string]string{
		"vertex-before-header": "v 0 C\n",
		"edge-before-header":   "e 0 1 -\n",
		"sparse-ids":           "t # a\nv 1 C\n",
		"bad-vertex":           "t # a\nv x C\n",
		"short-vertex":         "t # a\nv 0\n",
		"bad-edge":             "t # a\nv 0 C\nv 1 C\ne 0 x -\n",
		"short-edge":           "t # a\nv 0 C\nv 1 C\ne 0 1\n",
		"self-loop":            "t # a\nv 0 C\ne 0 0 -\n",
		"dup-edge":             "t # a\nv 0 C\nv 1 C\ne 0 1 -\ne 1 0 -\n",
		"unknown-record":       "t # a\nz 1 2\n",
		"dup-name":             "t # a\nv 0 C\nt # a\nv 0 C\n",
	}
	for name, in := range cases {
		if _, err := ReadLG(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadLG accepted invalid input", name)
		}
	}
}

func TestReadGraphLG(t *testing.T) {
	g, err := ReadGraphLG(strings.NewReader("t # x\nv 0 C\n"))
	if err != nil || g.Name() != "x" {
		t.Fatalf("ReadGraphLG = %v, %v", g, err)
	}
	if _, err := ReadGraphLG(strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := ReadGraphLG(strings.NewReader("t # a\nv 0 C\nt # b\nv 0 C\n")); err == nil {
		t.Fatal("two graphs must fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.lg")
	c := sampleCorpus()
	if err := SaveCorpus(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
	if _, err := LoadCorpus(filepath.Join(dir, "missing.lg")); err == nil {
		t.Fatal("loading missing file must fail")
	}
}

func TestJSONGraphRoundTrip(t *testing.T) {
	g := sampleCorpus().Graph(0)
	data, err := MarshalGraphJSON(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraphJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dump() != back.Dump() {
		t.Fatalf("JSON round trip changed graph:\n%s\nvs\n%s", g.Dump(), back.Dump())
	}
}

func TestJSONCorpusRoundTrip(t *testing.T) {
	c := sampleCorpus()
	data, err := MarshalCorpusJSON(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCorpusJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("Len = %d", back.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if c.Graph(i).Dump() != back.Graph(i).Dump() {
			t.Fatalf("graph %d changed", i)
		}
	}
}

func TestJSONInvalid(t *testing.T) {
	if _, err := UnmarshalGraphJSON([]byte(`{`)); err == nil {
		t.Fatal("syntactically invalid JSON must fail")
	}
	// Structurally invalid: edge endpoint out of range.
	if _, err := UnmarshalGraphJSON([]byte(`{"name":"x","nodes":["C"],"edges":[{"u":0,"v":5,"label":"-"}]}`)); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	if _, err := UnmarshalCorpusJSON([]byte(`[{"name":"a","nodes":["C"],"edges":[]},{"name":"a","nodes":["C"],"edges":[]}]`)); err == nil {
		t.Fatal("duplicate names must fail")
	}
}
