// Package gio implements graph serialization for the repository.
//
// Two encodings are supported:
//
//   - The ".lg" line-oriented text format, the de-facto standard for graph
//     corpora in the subgraph-mining literature (AIDS, PubChem exports):
//
//     t # <name>
//     v <id> <label>
//     e <u> <v> <label>
//
//     A file may contain any number of graphs; node IDs restart at 0 for
//     every graph and must be dense.
//
//   - JSON, used by the VQI specs served to the front end and by the
//     experiment harness.
//
// Both encodings round-trip exactly for simple labeled graphs.
package gio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteLG writes the graphs of a corpus to w in .lg format, in corpus order.
func WriteLG(w io.Writer, c *graph.Corpus) error {
	bw := bufio.NewWriter(w)
	var err error
	c.Each(func(_ int, g *graph.Graph) {
		if err != nil {
			return
		}
		err = writeOneLG(bw, g)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteGraphLG writes a single graph to w in .lg format.
func WriteGraphLG(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if err := writeOneLG(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}

func writeOneLG(w *bufio.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "t # %s\n", g.Name()); err != nil {
		return err
	}
	for i := 0; i < g.NumNodes(); i++ {
		if _, err := fmt.Fprintf(w, "v %d %s\n", i, g.NodeLabel(i)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if _, err := fmt.Fprintf(w, "e %d %d %s\n", u, v, e.Label); err != nil {
			return err
		}
	}
	return nil
}

// ReadLG parses a corpus from r in .lg format. Blank lines and lines
// starting with "//" are ignored. Labels may not contain whitespace.
func ReadLG(r io.Reader) (*graph.Corpus, error) {
	c := graph.NewCorpus()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var cur *graph.Graph
	lineNo := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		if err := c.Add(cur); err != nil {
			return err
		}
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "t":
			if err := flush(); err != nil {
				return nil, err
			}
			name := ""
			if len(fields) >= 3 && fields[1] == "#" {
				name = strings.Join(fields[2:], " ")
			} else if len(fields) >= 2 {
				name = strings.Join(fields[1:], " ")
			}
			if name == "" {
				name = fmt.Sprintf("graph%d", c.Len())
			}
			cur = graph.New(name)
		case "v":
			if cur == nil {
				return nil, fmt.Errorf("gio: line %d: vertex before graph header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("gio: line %d: malformed vertex line %q", lineNo, line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad vertex id: %v", lineNo, err)
			}
			if id != cur.NumNodes() {
				return nil, fmt.Errorf("gio: line %d: vertex id %d not dense (expected %d)", lineNo, id, cur.NumNodes())
			}
			cur.AddNode(fields[2])
		case "e":
			if cur == nil {
				return nil, fmt.Errorf("gio: line %d: edge before graph header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("gio: line %d: malformed edge line %q", lineNo, line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad edge endpoint: %v", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("gio: line %d: bad edge endpoint: %v", lineNo, err)
			}
			if _, err := cur.AddEdge(u, v, fields[3]); err != nil {
				return nil, fmt.Errorf("gio: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("gio: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return c, nil
}

// ReadGraphLG parses exactly one graph from r; it is an error if r contains
// zero or more than one graph.
func ReadGraphLG(r io.Reader) (*graph.Graph, error) {
	c, err := ReadLG(r)
	if err != nil {
		return nil, err
	}
	if c.Len() != 1 {
		return nil, fmt.Errorf("gio: expected exactly 1 graph, found %d", c.Len())
	}
	return c.Graph(0), nil
}

// LoadCorpus reads a .lg corpus from the named file.
func LoadCorpus(path string) (*graph.Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadLG(f)
}

// SaveCorpus writes a corpus to the named file in .lg format.
func SaveCorpus(path string, c *graph.Corpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLG(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonGraph is the JSON wire form of a graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []string   `json:"nodes"` // index = node id, value = label
	Edges []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	U     int    `json:"u"`
	V     int    `json:"v"`
	Label string `json:"label"`
}

// MarshalGraphJSON encodes g as JSON.
func MarshalGraphJSON(g *graph.Graph) ([]byte, error) {
	return json.Marshal(toJSONGraph(g))
}

func toJSONGraph(g *graph.Graph) jsonGraph {
	jg := jsonGraph{Name: g.Name(), Nodes: make([]string, g.NumNodes())}
	for i := 0; i < g.NumNodes(); i++ {
		jg.Nodes[i] = g.NodeLabel(i)
	}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		jg.Edges = append(jg.Edges, jsonEdge{U: u, V: v, Label: e.Label})
	}
	return jg
}

// UnmarshalGraphJSON decodes a graph from JSON produced by
// MarshalGraphJSON.
func UnmarshalGraphJSON(data []byte) (*graph.Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, err
	}
	return fromJSONGraph(jg)
}

func fromJSONGraph(jg jsonGraph) (*graph.Graph, error) {
	g := graph.New(jg.Name)
	for _, label := range jg.Nodes {
		g.AddNode(label)
	}
	for _, e := range jg.Edges {
		if _, err := g.AddEdge(e.U, e.V, e.Label); err != nil {
			return nil, fmt.Errorf("gio: json graph %q: %v", jg.Name, err)
		}
	}
	return g, nil
}

// MarshalCorpusJSON encodes a whole corpus as a JSON array of graphs.
func MarshalCorpusJSON(c *graph.Corpus) ([]byte, error) {
	arr := make([]jsonGraph, 0, c.Len())
	c.Each(func(_ int, g *graph.Graph) {
		arr = append(arr, toJSONGraph(g))
	})
	return json.Marshal(arr)
}

// UnmarshalCorpusJSON decodes a corpus from a JSON array of graphs.
func UnmarshalCorpusJSON(data []byte) (*graph.Corpus, error) {
	var arr []jsonGraph
	if err := json.Unmarshal(data, &arr); err != nil {
		return nil, err
	}
	c := graph.NewCorpus()
	for _, jg := range arr {
		g, err := fromJSONGraph(jg)
		if err != nil {
			return nil, err
		}
		if err := c.Add(g); err != nil {
			return nil, err
		}
	}
	return c, nil
}
