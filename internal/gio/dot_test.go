package gio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestWriteDOT(t *testing.T) {
	g := graph.New("mol")
	g.AddNode("C")
	g.AddNode(`N"quote`)
	g.MustAddEdge(0, 1, "single")
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "mol" {`, `n0 [label="C"]`, `n0 -- n1 [label="single"]`, `\"quote`} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTHighlighted(t *testing.T) {
	g := graph.New("g")
	g.AddNodes(3, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	var buf bytes.Buffer
	if err := WriteDOTHighlighted(&buf, g, []graph.NodeID{0, 1}, []graph.EdgeID{0}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "crimson") != 3 { // 2 nodes + 1 edge
		t.Fatalf("highlight count wrong:\n%s", out)
	}
	// Unlabeled edges with no highlight get no attribute list.
	g2 := graph.New("g2")
	g2.AddNodes(2, "A")
	g2.MustAddEdge(0, 1, "")
	buf.Reset()
	if err := WriteDOT(&buf, g2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n0 -- n1;") {
		t.Fatalf("bare edge rendering wrong:\n%s", buf.String())
	}
}
