package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatal(err)
	}
	if in.Calls("anything") != 0 || in.Fired("anything") != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestErrorFault(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Fault{Site: "db", Err: boom})
	if err := in.Fire("db"); err != boom {
		t.Fatalf("err = %v", err)
	}
	if err := in.Fire("other"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if in.Fired("db") != 1 {
		t.Fatalf("fired = %d", in.Fired("db"))
	}
}

func TestAfterAndCount(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Fault{Site: "s", Err: boom, After: 2, Count: 1})
	var got []error
	for i := 0; i < 5; i++ {
		got = append(got, in.Fire("s"))
	}
	want := []error{nil, nil, boom, nil, nil}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: got %v want %v", i, got[i], want[i])
		}
	}
	if in.Calls("s") != 5 || in.Fired("s") != 1 {
		t.Fatalf("calls=%d fired=%d", in.Calls("s"), in.Fired("s"))
	}
}

func TestPanicFault(t *testing.T) {
	in := New(1, Fault{Site: "handler", PanicMsg: "injected"})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(v.(string), "injected") || !strings.Contains(v.(string), "handler") {
			t.Fatalf("panic value %q", v)
		}
	}()
	in.Fire("handler")
}

func TestDelayFault(t *testing.T) {
	d := 30 * time.Millisecond
	in := New(1, Fault{Site: "slow", Delay: d})
	start := time.Now()
	if err := in.Fire("slow"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("returned after %v, want >= %v", elapsed, d)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed, Fault{Site: "p", Err: errors.New("x"), Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire("p") != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical seeds", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times", fires, len(a))
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

// TestProbWithAfterAndCount pins how the three gates compose: After skips
// the first calls outright (they don't consume probabilistic draws — the
// hash is keyed by absolute call number, so skipped calls shift nothing),
// Prob then thins the eligible calls, and Count caps total fires. The
// whole schedule is a pure function of the seed, so it can be predicted
// call-by-call with hashFires and must replay identically.
func TestProbWithAfterAndCount(t *testing.T) {
	const (
		site  = "pac"
		seed  = 11
		after = 10
		count = 3
		prob  = 0.4
		calls = 200
	)
	schedule := func() []bool {
		in := New(seed, Fault{Site: site, Err: errors.New("x"), Prob: prob, After: after, Count: count})
		out := make([]bool, calls)
		for i := range out {
			out[i] = in.Fire(site) != nil
		}
		if in.Calls(site) != calls {
			t.Fatalf("calls = %d, want %d", in.Calls(site), calls)
		}
		return out
	}
	got := schedule()

	// Predict the exact firing schedule from first principles.
	want := make([]bool, calls)
	fired := 0
	for n := 0; n < calls; n++ {
		if n < after || fired >= count {
			continue
		}
		if hashFires(seed, site, n, prob) {
			want[n] = true
			fired++
		}
	}
	if fired != count {
		t.Fatalf("fixture too small: only %d/%d predicted fires in %d calls", fired, count, calls)
	}
	for n := range want {
		if got[n] != want[n] {
			t.Fatalf("call %d: fired=%v, predicted %v", n, got[n], want[n])
		}
	}
	for n := 0; n < after; n++ {
		if got[n] {
			t.Fatalf("call %d fired inside the After window", n)
		}
	}

	// A second injector with the same seed replays the identical schedule.
	replay := schedule()
	for n := range got {
		if got[n] != replay[n] {
			t.Fatalf("call %d diverged on replay with the same seed", n)
		}
	}
}

// TestConcurrentProbAccounting: the per-site call counter is assigned
// under the injector lock, so every call gets a unique call number and the
// probabilistic fire total is exact — equal to the number of hash wins in
// [0, calls) — no matter how goroutines interleave. A second site checks
// that Count still caps a Prob fault under the same contention. Run under
// -race by scripts/verify.sh.
func TestConcurrentProbAccounting(t *testing.T) {
	const (
		seed       = 13
		prob       = 0.5
		workers    = 8
		perWorker  = 250
		totalCalls = workers * perWorker
		capCount   = 5
	)
	in := New(seed,
		Fault{Site: "free", Err: errors.New("x"), Prob: prob},
		Fault{Site: "capped", Err: errors.New("x"), Prob: prob, Count: capCount},
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				in.Fire("free")
				in.Fire("capped")
			}
		}()
	}
	wg.Wait()

	if in.Calls("free") != totalCalls || in.Calls("capped") != totalCalls {
		t.Fatalf("calls = %d/%d, want %d each", in.Calls("free"), in.Calls("capped"), totalCalls)
	}
	wantFree := 0
	for n := 0; n < totalCalls; n++ {
		if hashFires(seed, "free", n, prob) {
			wantFree++
		}
	}
	if got := in.Fired("free"); got != wantFree {
		t.Fatalf("uncapped prob site fired %d times, hash predicts exactly %d", got, wantFree)
	}
	if got := in.Fired("capped"); got != capCount {
		t.Fatalf("capped prob site fired %d times, want Count=%d", got, capCount)
	}
}

func TestConcurrentFire(t *testing.T) {
	in := New(1, Fault{Site: "c", Err: errors.New("x"), Count: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Fire("c") != nil {
					mu.Lock()
					errs++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if errs != 10 {
		t.Fatalf("Count=10 fired %d times under concurrency", errs)
	}
	if in.Calls("c") != 800 {
		t.Fatalf("calls = %d", in.Calls("c"))
	}
}
