package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatal(err)
	}
	if in.Calls("anything") != 0 || in.Fired("anything") != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestErrorFault(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Fault{Site: "db", Err: boom})
	if err := in.Fire("db"); err != boom {
		t.Fatalf("err = %v", err)
	}
	if err := in.Fire("other"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if in.Fired("db") != 1 {
		t.Fatalf("fired = %d", in.Fired("db"))
	}
}

func TestAfterAndCount(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Fault{Site: "s", Err: boom, After: 2, Count: 1})
	var got []error
	for i := 0; i < 5; i++ {
		got = append(got, in.Fire("s"))
	}
	want := []error{nil, nil, boom, nil, nil}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("call %d: got %v want %v", i, got[i], want[i])
		}
	}
	if in.Calls("s") != 5 || in.Fired("s") != 1 {
		t.Fatalf("calls=%d fired=%d", in.Calls("s"), in.Fired("s"))
	}
}

func TestPanicFault(t *testing.T) {
	in := New(1, Fault{Site: "handler", PanicMsg: "injected"})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("no panic")
		}
		if !strings.Contains(v.(string), "injected") || !strings.Contains(v.(string), "handler") {
			t.Fatalf("panic value %q", v)
		}
	}()
	in.Fire("handler")
}

func TestDelayFault(t *testing.T) {
	d := 30 * time.Millisecond
	in := New(1, Fault{Site: "slow", Delay: d})
	start := time.Now()
	if err := in.Fire("slow"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("returned after %v, want >= %v", elapsed, d)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed, Fault{Site: "p", Err: errors.New("x"), Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Fire("p") != nil
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical seeds", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times", fires, len(a))
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns")
	}
}

func TestConcurrentFire(t *testing.T) {
	in := New(1, Fault{Site: "c", Err: errors.New("x"), Count: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Fire("c") != nil {
					mu.Lock()
					errs++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if errs != 10 {
		t.Fatalf("Count=10 fired %d times under concurrency", errs)
	}
	if in.Calls("c") != 800 {
		t.Fatalf("calls = %d", in.Calls("c"))
	}
}
