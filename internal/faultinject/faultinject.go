// Package faultinject provides deterministic, seed-driven fault hooks for
// robustness testing. Production code places named sites on its paths
// (Injector.Fire); tests arm an injector with faults — a delay, an error,
// or a panic — that trigger on precisely chosen calls. Because triggering
// is a pure function of (seed, site, call number), a failing run replays
// identically, which is what makes fault-injection tests debuggable.
//
// A nil *Injector is valid and inert: production wiring can hold a nil
// injector at zero cost, and only tests ever arm one.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Fault describes one armed behavior at a site.
type Fault struct {
	// Site names the hook this fault arms. Required.
	Site string
	// Delay, if positive, sleeps before the outcome is applied — used to
	// simulate slow dependencies and to hold requests open in drain tests.
	Delay time.Duration
	// Err, if non-nil, is returned from Fire.
	Err error
	// PanicMsg, if non-empty, panics with this message (after Delay).
	// Checked before Err.
	PanicMsg string
	// After skips the first After calls to the site: the fault arms from
	// call After+1 on. Zero means armed from the first call.
	After int
	// Count caps how many times the fault fires (0 = unlimited).
	Count int
	// Prob, if in (0, 1), fires probabilistically: call n fires iff a
	// splitmix64 hash of (seed, site, n) falls below Prob. Deterministic
	// per seed — the same run always injects at the same calls. Zero (or
	// >= 1) means fire on every eligible call.
	Prob float64
}

// armed is a Fault plus its mutable firing state.
type armed struct {
	Fault
	fired int
}

// Injector is a set of armed faults with per-site call counters. Safe for
// concurrent use; a nil Injector never fires.
type Injector struct {
	mu     sync.Mutex
	seed   int64
	faults map[string][]*armed
	calls  map[string]int
}

// New returns an injector armed with the given faults. The seed drives
// probabilistic triggering (Fault.Prob); deterministic faults ignore it.
func New(seed int64, faults ...Fault) *Injector {
	in := &Injector{
		seed:   seed,
		faults: make(map[string][]*armed),
		calls:  make(map[string]int),
	}
	for _, f := range faults {
		in.faults[f.Site] = append(in.faults[f.Site], &armed{Fault: f})
	}
	return in
}

// Fire executes the site's armed faults, if any. It sleeps for a matching
// fault's Delay, panics if it has a PanicMsg, and otherwise returns its
// Err (which may be nil for a pure-delay fault). At most one fault fires
// per call — the first armed match in arming order. A nil receiver or an
// unarmed site is a no-op returning nil.
func (in *Injector) Fire(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	n := in.calls[site]
	in.calls[site] = n + 1
	var hit *armed
	for _, a := range in.faults[site] {
		if n < a.After {
			continue
		}
		if a.Count > 0 && a.fired >= a.Count {
			continue
		}
		if a.Prob > 0 && a.Prob < 1 && !hashFires(in.seed, site, n, a.Prob) {
			continue
		}
		a.fired++
		hit = a
		break
	}
	in.mu.Unlock()
	if hit == nil {
		return nil
	}
	if hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	if hit.PanicMsg != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, hit.PanicMsg))
	}
	return hit.Err
}

// Calls reports how many times the site has been fired at (armed or not).
// Zero on a nil receiver.
func (in *Injector) Calls(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[site]
}

// Fired reports how many times any fault at the site actually triggered.
func (in *Injector) Fired(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	total := 0
	for _, a := range in.faults[site] {
		total += a.fired
	}
	return total
}

// hashFires maps (seed, site, call) to [0,1) with a splitmix64 finalizer
// over an FNV-mixed site hash — cheap, stateless, reproducible.
func hashFires(seed int64, site string, call int, prob float64) bool {
	h := uint64(1469598103934665603) // FNV offset basis
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	z := uint64(seed) ^ h ^ uint64(call)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < prob
}
