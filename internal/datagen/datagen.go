// Package datagen generates synthetic graph data standing in for the
// proprietary datasets used by the surveyed papers.
//
// Two regimes matter for data-driven VQI research:
//
//   - Corpora of small/medium data graphs (CATAPULT, MIDAS): chemical-
//     compound-like graphs built from fused rings and chains with skewed
//     atom/bond label distributions, mirroring AIDS/PubChem statistics
//     (tens of nodes, average degree ≈ 2, shared ring motifs).
//
//   - Single large networks (TATTOO): Erdős–Rényi, Barabási–Albert
//     preferential attachment, Watts–Strogatz small world, and planted-
//     partition community graphs, spanning the sparse-triangle-poor to
//     dense-triangle-rich spectrum that the truss split separates.
//
// All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Atom labels with an AIDS-like skew: carbon dominates, then N/O, then the
// long tail. Weights are relative.
var atomLabels = []struct {
	label  string
	weight int
}{
	{"C", 70}, {"N", 10}, {"O", 10}, {"S", 4}, {"P", 2}, {"Cl", 2}, {"F", 1}, {"Br", 1},
}

// Bond labels: single bonds dominate.
var bondLabels = []struct {
	label  string
	weight int
}{
	{"s", 75}, {"d", 15}, {"a", 10}, // single, double, aromatic
}

func pickWeighted(rng *rand.Rand, items []struct {
	label  string
	weight int
}) string {
	total := 0
	for _, it := range items {
		total += it.weight
	}
	x := rng.Intn(total)
	for _, it := range items {
		x -= it.weight
		if x < 0 {
			return it.label
		}
	}
	return items[len(items)-1].label
}

// ChemicalOptions configure the compound generator.
type ChemicalOptions struct {
	MinNodes int     // minimum compound size (default 8)
	MaxNodes int     // maximum compound size (default 40)
	RingBias float64 // probability a growth step starts a ring, in [0,1] (default 0.4)
}

func (o *ChemicalOptions) defaults() {
	if o.MinNodes == 0 {
		o.MinNodes = 8
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 40
	}
	if o.RingBias == 0 {
		o.RingBias = 0.4
	}
}

// Chemical generates one compound-like connected graph with the given name.
// Structure grows by attaching rings (5- or 6-cycles, benzene-like) and
// chains to a random existing atom, which yields the fused-ring topology
// and motif sharing that CATAPULT's clustering exploits.
func Chemical(rng *rand.Rand, name string, opts ChemicalOptions) *graph.Graph {
	opts.defaults()
	target := opts.MinNodes + rng.Intn(opts.MaxNodes-opts.MinNodes+1)
	g := graph.New(name)
	g.AddNode(pickWeighted(rng, atomLabels))
	for g.NumNodes() < target {
		anchor := graph.NodeID(rng.Intn(g.NumNodes()))
		if rng.Float64() < opts.RingBias {
			attachRing(rng, g, anchor)
		} else {
			attachChain(rng, g, anchor)
		}
	}
	return g
}

// attachRing fuses a new 5- or 6-ring onto the anchor atom. With
// probability 1/2 the ring is aromatic (uniform "a" bonds and carbon
// atoms), modeling benzene and furan-like motifs.
func attachRing(rng *rand.Rand, g *graph.Graph, anchor graph.NodeID) {
	size := 5 + rng.Intn(2)
	aromatic := rng.Float64() < 0.5
	bond := func() string {
		if aromatic {
			return "a"
		}
		return pickWeighted(rng, bondLabels)
	}
	atom := func() string {
		if aromatic {
			return "C"
		}
		return pickWeighted(rng, atomLabels)
	}
	prev := anchor
	first := anchor
	for i := 0; i < size-1; i++ {
		n := g.AddNode(atom())
		g.MustAddEdge(prev, n, bond())
		prev = n
	}
	if !g.HasEdge(prev, first) {
		g.MustAddEdge(prev, first, bond())
	}
}

// attachChain grows a short chain (1-4 atoms) from the anchor.
func attachChain(rng *rand.Rand, g *graph.Graph, anchor graph.NodeID) {
	length := 1 + rng.Intn(4)
	prev := anchor
	for i := 0; i < length; i++ {
		n := g.AddNode(pickWeighted(rng, atomLabels))
		g.MustAddEdge(prev, n, pickWeighted(rng, bondLabels))
		prev = n
	}
}

// ChemicalCorpus generates a corpus of count compound-like graphs named
// "mol<i>". Deterministic for a given seed.
func ChemicalCorpus(seed int64, count int, opts ChemicalOptions) *graph.Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := graph.NewCorpus()
	for i := 0; i < count; i++ {
		c.MustAdd(Chemical(rng, fmt.Sprintf("mol%d", i), opts))
	}
	return c
}

// networkLabels are the node labels for large networks, Zipf-skewed over a
// small vocabulary (entity types in a property graph).
var networkLabels = []struct {
	label  string
	weight int
}{
	{"person", 50}, {"org", 20}, {"place", 15}, {"event", 10}, {"item", 5},
}

func networkNodeLabel(rng *rand.Rand) string { return pickWeighted(rng, networkLabels) }

// ErdosRenyi generates G(n, m) with exactly m uniformly random edges.
func ErdosRenyi(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(fmt.Sprintf("er-%d-%d", n, m))
	for i := 0; i < n; i++ {
		g.AddNode(networkNodeLabel(rng))
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for g.NumEdges() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, "knows")
		}
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment network: each new node
// attaches to k existing nodes chosen proportionally to degree. Produces
// the heavy-tailed degree distributions (hubs → stars, petals) that TATTOO
// mines from real social networks.
func BarabasiAlbert(seed int64, n, k int) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(fmt.Sprintf("ba-%d-%d", n, k))
	if n == 0 {
		return g
	}
	// Seed clique of k+1 nodes.
	seedN := k + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		g.AddNode(networkNodeLabel(rng))
	}
	// Degree-proportional sampling via the repeated-endpoints trick.
	var endpoints []graph.NodeID
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			g.MustAddEdge(i, j, "knows")
			endpoints = append(endpoints, i, j)
		}
	}
	for v := seedN; v < n; v++ {
		id := g.AddNode(networkNodeLabel(rng))
		attached := 0
		for attempt := 0; attached < k && attempt < 20*k; attempt++ {
			var u graph.NodeID
			if len(endpoints) == 0 {
				u = graph.NodeID(rng.Intn(v))
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if u != id && !g.HasEdge(id, u) {
				g.MustAddEdge(id, u, "knows")
				endpoints = append(endpoints, id, u)
				attached++
			}
		}
	}
	return g
}

// WattsStrogatz generates a small-world network: a ring lattice where each
// node connects to its k nearest neighbors (k even), with each edge rewired
// to a random endpoint with probability beta. High clustering at low beta
// exercises the triangle-rich G_T region.
func WattsStrogatz(seed int64, n, k int, beta float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(fmt.Sprintf("ws-%d-%d", n, k))
	for i := 0; i < n; i++ {
		g.AddNode(networkNodeLabel(rng))
	}
	if n < 3 {
		return g
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= half; j++ {
			u := (v + j) % n
			target := u
			if rng.Float64() < beta {
				target = rng.Intn(n)
			}
			if target != v && !g.HasEdge(v, target) {
				g.MustAddEdge(v, target, "knows")
			} else if u != v && !g.HasEdge(v, u) {
				g.MustAddEdge(v, u, "knows")
			}
		}
	}
	return g
}

// PlantedPartition generates a community graph with the given number of
// communities of the given size; node pairs inside a community are joined
// with probability pIn, across communities with probability pOut.
func PlantedPartition(seed int64, communities, size int, pIn, pOut float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := communities * size
	g := graph.New(fmt.Sprintf("pp-%dx%d", communities, size))
	for i := 0; i < n; i++ {
		g.AddNode(networkNodeLabel(rng))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/size == v/size {
				p = pIn
			}
			if rng.Float64() < p {
				g.MustAddEdge(u, v, "knows")
			}
		}
	}
	return g
}

// RandomConnectedSubgraph extracts a connected subgraph of g with exactly
// size nodes via a random BFS-style expansion, or nil if g has fewer than
// size nodes reachable from the chosen start. Used by the query-workload
// generator: visual subgraph queries are, by construction, connected
// subgraphs of the data.
func RandomConnectedSubgraph(rng *rand.Rand, g *graph.Graph, size int) *graph.Graph {
	if g.NumNodes() == 0 || size <= 0 {
		return nil
	}
	for attempt := 0; attempt < 30; attempt++ {
		start := graph.NodeID(rng.Intn(g.NumNodes()))
		picked := []graph.NodeID{start}
		inPicked := map[graph.NodeID]bool{start: true}
		var frontier []graph.NodeID
		g.VisitNeighbors(start, func(nbr graph.NodeID, _ graph.EdgeID) bool {
			frontier = append(frontier, nbr)
			return true
		})
		for len(picked) < size && len(frontier) > 0 {
			i := rng.Intn(len(frontier))
			next := frontier[i]
			frontier = append(frontier[:i], frontier[i+1:]...)
			if inPicked[next] {
				continue
			}
			picked = append(picked, next)
			inPicked[next] = true
			g.VisitNeighbors(next, func(nbr graph.NodeID, _ graph.EdgeID) bool {
				if !inPicked[nbr] {
					frontier = append(frontier, nbr)
				}
				return true
			})
		}
		if len(picked) == size {
			sub, _ := g.InducedSubgraph(picked)
			sub.SetName(fmt.Sprintf("%s#q%d", g.Name(), size))
			return sub
		}
	}
	return nil
}
