package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestChemicalDeterministic(t *testing.T) {
	a := ChemicalCorpus(42, 20, ChemicalOptions{})
	b := ChemicalCorpus(42, 20, ChemicalOptions{})
	if a.Len() != 20 || b.Len() != 20 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Graph(i).Dump() != b.Graph(i).Dump() {
			t.Fatalf("graph %d differs between identical seeds", i)
		}
	}
	c := ChemicalCorpus(43, 20, ChemicalOptions{})
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Graph(i).Dump() != c.Graph(i).Dump() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestChemicalShape(t *testing.T) {
	opts := ChemicalOptions{MinNodes: 10, MaxNodes: 30}
	c := ChemicalCorpus(7, 50, opts)
	stats := c.Stats()
	if stats.MinNodes < 10 {
		t.Fatalf("min nodes = %d, want ≥ 10", stats.MinNodes)
	}
	carbons := stats.NodeLabels["C"]
	if carbons*2 < stats.TotalNodes {
		t.Fatalf("carbon should dominate: %d of %d", carbons, stats.TotalNodes)
	}
	rings := 0
	c.Each(func(_ int, g *graph.Graph) {
		if !g.IsConnected() {
			t.Fatalf("compound %s not connected", g.Name())
		}
		if g.NumEdges() >= g.NumNodes() {
			rings++ // cyclomatic number ≥ 1 means at least one ring
		}
	})
	if rings < 25 {
		t.Fatalf("too few ring-bearing compounds: %d/50", rings)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1, 100, 300)
	if g.NumNodes() != 100 || g.NumEdges() != 300 {
		t.Fatalf("ER = %s", g)
	}
	// Requesting more edges than possible caps at the maximum.
	small := ErdosRenyi(1, 5, 100)
	if small.NumEdges() != 10 {
		t.Fatalf("capped ER edges = %d, want 10", small.NumEdges())
	}
	if ErdosRenyi(2, 100, 300).Dump() == g.Dump() {
		t.Fatal("different seeds must differ")
	}
	if ErdosRenyi(1, 100, 300).Dump() != g.Dump() {
		t.Fatal("same seed must reproduce")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(5, 500, 3)
	if g.NumNodes() != 500 {
		t.Fatalf("BA nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	// Heavy tail: max degree well above the attachment parameter.
	if g.MaxDegree() < 10 {
		t.Fatalf("BA max degree = %d, expected a hub", g.MaxDegree())
	}
	// Mean degree ≈ 2k.
	mean := 2 * float64(g.NumEdges()) / float64(g.NumNodes())
	if mean < 4 || mean > 8 {
		t.Fatalf("BA mean degree = %v, want ≈ 6", mean)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(3, 200, 4, 0.1)
	if g.NumNodes() != 200 {
		t.Fatalf("WS nodes = %d", g.NumNodes())
	}
	// Low rewiring keeps high clustering: a ring lattice with k=4 has many
	// triangles.
	if g.CountTriangles() < 50 {
		t.Fatalf("WS triangles = %d, want many", g.CountTriangles())
	}
	if WattsStrogatz(3, 200, 4, 0.1).Dump() != g.Dump() {
		t.Fatal("WS must be deterministic")
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(11, 4, 25, 0.3, 0.01)
	if g.NumNodes() != 100 {
		t.Fatalf("PP nodes = %d", g.NumNodes())
	}
	in, out := 0, 0
	for _, e := range g.Edges() {
		if e.U/25 == e.V/25 {
			in++
		} else {
			out++
		}
	}
	if in <= out {
		t.Fatalf("communities not denser inside: in=%d out=%d", in, out)
	}
}

func TestRandomConnectedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := BarabasiAlbert(1, 200, 3)
	for size := 2; size <= 10; size++ {
		q := RandomConnectedSubgraph(rng, g, size)
		if q == nil {
			t.Fatalf("size %d: no subgraph extracted", size)
		}
		if q.NumNodes() != size {
			t.Fatalf("size %d: got %d nodes", size, q.NumNodes())
		}
		if !q.IsConnected() {
			t.Fatalf("size %d: subgraph not connected", size)
		}
	}
	if RandomConnectedSubgraph(rng, graph.New("e"), 3) != nil {
		t.Fatal("empty graph must yield nil")
	}
	if RandomConnectedSubgraph(rng, g, 0) != nil {
		t.Fatal("size 0 must yield nil")
	}
	// Impossible size: a 5-node graph cannot yield a 10-node subgraph.
	tiny := ErdosRenyi(1, 5, 4)
	if RandomConnectedSubgraph(rng, tiny, 10) != nil {
		t.Fatal("oversized request must yield nil")
	}
}

func TestPickWeightedCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		seen[pickWeighted(rng, atomLabels)] = true
	}
	for _, it := range atomLabels {
		if !seen[it.label] {
			t.Errorf("label %q never drawn", it.label)
		}
	}
}
