// Package canon computes canonical forms of small labeled graphs.
//
// The canonical string of a graph is identical for isomorphic graphs and
// distinct for non-isomorphic ones, which makes it usable as a map key when
// deduplicating the thousands of candidate patterns the selection
// frameworks generate. The algorithm is the classical individualization-
// refinement scheme: color refinement (1-WL) over (label, degree) classes,
// then branch by individualizing each member of the first non-singleton
// class, refining again, and keeping the lexicographically smallest fully
// discrete encoding. This handles highly symmetric patterns (cycles, stars,
// cliques) in polynomial-ish time for the ≤ ~20-node patterns this
// repository works with; it is not intended for large networks.
package canon

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/graph"
)

// String returns the canonical string of g. Two graphs have equal canonical
// strings iff they are isomorphic as labeled graphs.
func String(g *graph.Graph) string {
	n := g.NumNodes()
	if n == 0 {
		return "n0;"
	}
	c := &canonizer{g: g}
	colors := c.refine(c.initialColors())
	return c.search(colors)
}

// Equal reports whether a and b are isomorphic, via canonical strings.
func Equal(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	return String(a) == String(b)
}

// Hash returns a 64-bit FNV hash of the canonical string, usable as a
// compact fingerprint (collisions are possible but astronomically unlikely
// at corpus scale; use String where exactness matters).
func Hash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	h.Write([]byte(String(g)))
	return h.Sum64()
}

type canonizer struct {
	g *graph.Graph
}

// initialColors assigns colors by (node label, degree).
func (c *canonizer) initialColors() []int {
	n := c.g.NumNodes()
	sig := make([]string, n)
	for v := 0; v < n; v++ {
		sig[v] = fmt.Sprintf("%s|%09d", c.g.NodeLabel(v), c.g.Degree(v))
	}
	return assignColors(sig)
}

// refine runs color refinement until the partition stabilizes. Signatures
// are built so their lexicographic order is isomorphism-invariant: the old
// color (zero-padded) followed by the sorted multiset of
// (edge label, neighbor color) pairs.
func (c *canonizer) refine(colors []int) []int {
	n := c.g.NumNodes()
	sig := make([]string, n)
	classes := numClasses(colors)
	for round := 0; round < n; round++ {
		for v := 0; v < n; v++ {
			var parts []string
			c.g.VisitNeighbors(v, func(nbr graph.NodeID, e graph.EdgeID) bool {
				parts = append(parts, fmt.Sprintf("%s:%09d", c.g.EdgeLabel(e), colors[nbr]))
				return true
			})
			sort.Strings(parts)
			sig[v] = fmt.Sprintf("%09d(%s)", colors[v], strings.Join(parts, ","))
		}
		next := assignColors(sig)
		nextClasses := numClasses(next)
		colors = next
		if nextClasses == classes {
			break
		}
		classes = nextClasses
	}
	return colors
}

// search performs individualization-refinement and returns the minimal
// encoding reachable from the given stable coloring.
func (c *canonizer) search(colors []int) string {
	cell := firstNonSingletonCell(colors)
	if cell == nil {
		return c.encodeDiscrete(colors)
	}
	// Twin-class pruning: if every pair of cell members is interchangeable
	// by an automorphism that fixes everything else (identical labeled
	// neighborhoods outside the cell, uniform adjacency inside), all
	// branches yield the same encoding — one suffices. This keeps cliques,
	// stars, and independent twin sets polynomial, where refinement alone
	// never splits the class.
	if c.isTwinClass(cell) {
		cell = cell[:1]
	}
	best := ""
	for _, v := range cell {
		ind := c.individualize(colors, v)
		enc := c.search(c.refine(ind))
		if best == "" || enc < best {
			best = enc
		}
	}
	return best
}

// isTwinClass reports whether all members of cell are pairwise twins: same
// node label, identical labeled adjacency to every node outside the cell,
// and uniform adjacency (all-present with one edge label, or all-absent)
// inside the cell.
func (c *canonizer) isTwinClass(cell []graph.NodeID) bool {
	if len(cell) < 2 {
		return true
	}
	inCell := make(map[graph.NodeID]bool, len(cell))
	for _, v := range cell {
		inCell[v] = true
	}
	// Outside adjacency of the first member, as reference.
	ref := c.outsideAdjacency(cell[0], inCell)
	for _, v := range cell[1:] {
		if c.g.NodeLabel(v) != c.g.NodeLabel(cell[0]) {
			return false
		}
		adj := c.outsideAdjacency(v, inCell)
		if len(adj) != len(ref) {
			return false
		}
		for u, l := range ref {
			if adj[u] != l {
				return false
			}
		}
	}
	// Inside adjacency must be uniform: complete with a single edge label,
	// or empty.
	var edgeLabel string
	var anyEdge, anyMissing bool
	for i := 0; i < len(cell); i++ {
		for j := i + 1; j < len(cell); j++ {
			if e, ok := c.g.EdgeBetween(cell[i], cell[j]); ok {
				l := c.g.EdgeLabel(e)
				if anyEdge && l != edgeLabel {
					return false
				}
				anyEdge, edgeLabel = true, l
			} else {
				anyMissing = true
			}
		}
	}
	return !(anyEdge && anyMissing)
}

// outsideAdjacency returns the labeled adjacency of v restricted to nodes
// outside the cell.
func (c *canonizer) outsideAdjacency(v graph.NodeID, inCell map[graph.NodeID]bool) map[graph.NodeID]string {
	adj := make(map[graph.NodeID]string)
	c.g.VisitNeighbors(v, func(nbr graph.NodeID, e graph.EdgeID) bool {
		if !inCell[nbr] {
			adj[nbr] = c.g.EdgeLabel(e)
		}
		return true
	})
	return adj
}

// individualize gives v a color strictly smaller than the rest of its cell
// while preserving the relative order of all other cells.
func (c *canonizer) individualize(colors []int, v graph.NodeID) []int {
	out := make([]int, len(colors))
	for u, col := range colors {
		out[u] = col * 2
		if col > colors[v] || (col == colors[v] && u != int(v)) {
			out[u]++
		}
	}
	// Re-densify; numeric order is preserved by zero-padded signatures.
	sig := make([]string, len(out))
	for u, col := range out {
		sig[u] = fmt.Sprintf("%09d", col)
	}
	return assignColors(sig)
}

// firstNonSingletonCell returns the members of the lowest-colored class with
// more than one member, or nil if the coloring is discrete.
func firstNonSingletonCell(colors []int) []graph.NodeID {
	counts := make(map[int]int)
	for _, col := range colors {
		counts[col]++
	}
	bestColor := -1
	for col, k := range counts {
		if k > 1 && (bestColor == -1 || col < bestColor) {
			bestColor = col
		}
	}
	if bestColor == -1 {
		return nil
	}
	var cell []graph.NodeID
	for v, col := range colors {
		if col == bestColor {
			cell = append(cell, v)
		}
	}
	return cell
}

// encodeDiscrete serializes the graph under the node order given by a
// discrete (all-singleton) coloring.
func (c *canonizer) encodeDiscrete(colors []int) string {
	n := c.g.NumNodes()
	perm := make([]graph.NodeID, n)
	for v, col := range colors {
		perm[col] = v
	}
	return encode(c.g, perm)
}

// assignColors maps signature strings to dense integers ordered by
// signature, keeping colors isomorphism-invariant.
func assignColors(sig []string) []int {
	uniq := append([]string(nil), sig...)
	sort.Strings(uniq)
	uniq = dedupStrings(uniq)
	idx := make(map[string]int, len(uniq))
	for i, s := range uniq {
		idx[s] = i
	}
	colors := make([]int, len(sig))
	for v, s := range sig {
		colors[v] = idx[s]
	}
	return colors
}

func dedupStrings(s []string) []string {
	out := s[:0]
	for i, x := range s {
		if i == 0 || x != s[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func numClasses(c []int) int {
	max := -1
	for _, x := range c {
		if x > max {
			max = x
		}
	}
	return max + 1
}

// encode serializes g under the node ordering perm: node count, node labels
// in order, then sorted renumbered edges.
func encode(g *graph.Graph, perm []graph.NodeID) string {
	pos := make([]int, g.NumNodes())
	for i, v := range perm {
		pos[v] = i
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n%d;", g.NumNodes())
	for _, v := range perm {
		b.WriteString(g.NodeLabel(v))
		b.WriteByte(';')
	}
	type edgeRec struct {
		u, v  int
		label string
	}
	edges := make([]edgeRec, 0, g.NumEdges())
	for _, e := range g.Edges() {
		u, v := pos[e.U], pos[e.V]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, edgeRec{u, v, e.Label})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		if edges[i].v != edges[j].v {
			return edges[i].v < edges[j].v
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "%d-%d:%s;", e.u, e.v, e.label)
	}
	return b.String()
}
