package canon

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
	"repro/internal/isomorph"
)

func cycle(n int, label string) *graph.Graph {
	g := graph.New("c")
	g.AddNodes(n, label)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, "-")
	}
	return g
}

func path(n int, label string) *graph.Graph {
	g := graph.New("p")
	g.AddNodes(n, label)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	return g
}

func clique(n int, label string) *graph.Graph {
	g := graph.New("k")
	g.AddNodes(n, label)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	return g
}

func star(leaves int) *graph.Graph {
	g := graph.New("s")
	c := g.AddNode("A")
	for i := 0; i < leaves; i++ {
		l := g.AddNode("A")
		g.MustAddEdge(c, l, "-")
	}
	return g
}

func permuted(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := graph.New(g.Name() + "-perm")
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	for i := 0; i < n; i++ {
		out.AddNode(g.NodeLabel(inv[i]))
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(perm[e.U], perm[e.V], e.Label)
	}
	return out
}

func TestCanonicalInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fixtures := []*graph.Graph{
		path(5, "A"), cycle(6, "A"), clique(5, "A"), star(7),
	}
	for _, g := range fixtures {
		want := String(g)
		for trial := 0; trial < 10; trial++ {
			if got := String(permuted(g, rng)); got != want {
				t.Fatalf("%s: permutation changed canonical string", g)
			}
		}
	}
}

func TestCanonicalDistinguishes(t *testing.T) {
	pairs := []struct {
		name string
		a, b *graph.Graph
	}{
		{"P4-vs-star3", path(4, "A"), star(3)},
		{"C6-vs-2C3", cycle(6, "A"), disjointTriangles()},
		{"C4-vs-P4", cycle(4, "A"), path(4, "A")},
	}
	for _, tc := range pairs {
		if String(tc.a) == String(tc.b) {
			t.Errorf("%s: non-isomorphic graphs share canonical string", tc.name)
		}
	}
}

func disjointTriangles() *graph.Graph {
	g := graph.New("2c3")
	g.AddNodes(6, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	g.MustAddEdge(3, 4, "-")
	g.MustAddEdge(4, 5, "-")
	g.MustAddEdge(3, 5, "-")
	return g
}

func TestLabelsAffectCanonicalForm(t *testing.T) {
	a := path(3, "A")
	b := path(3, "A")
	b.SetNodeLabel(0, "B")
	c := path(3, "A")
	c.SetNodeLabel(2, "B") // isomorphic to b (mirror)
	if String(a) == String(b) {
		t.Fatal("node label must change canonical string")
	}
	if String(b) != String(c) {
		t.Fatal("mirror-labeled paths must share canonical string")
	}
	d := path(3, "A")
	d.SetEdgeLabel(0, "double")
	if String(a) == String(d) {
		t.Fatal("edge label must change canonical string")
	}
	e := path(3, "A")
	e.SetEdgeLabel(1, "double") // mirror of d
	if String(d) != String(e) {
		t.Fatal("mirror edge-labeled paths must share canonical string")
	}
}

func TestEqualAgreesWithIsomorph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"C", "N"}
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(7)
		mk := func() *graph.Graph {
			g := graph.New("r")
			for i := 0; i < n; i++ {
				g.AddNode(labels[rng.Intn(2)])
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() < 0.4 {
						g.MustAddEdge(i, j, "-")
					}
				}
			}
			return g
		}
		a, b := mk(), mk()
		if got, want := Equal(a, b), isomorph.Isomorphic(a, b); got != want {
			t.Fatalf("trial %d: canon.Equal=%v isomorph=%v\n%s\n%s", trial, got, want, a.Dump(), b.Dump())
		}
	}
}

func TestSymmetricGraphsFast(t *testing.T) {
	// These all have huge automorphism groups; individualization-refinement
	// plus twin pruning must keep them fast.
	cases := []*graph.Graph{
		clique(12, "A"),
		star(20),
		cycle(16, "A"),
		completeBipartite(6, 6),
	}
	for _, g := range cases {
		start := time.Now()
		s := String(g)
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("%s: canonical form took %v", g, d)
		}
		if s == "" {
			t.Fatalf("%s: empty canonical string", g)
		}
	}
}

func completeBipartite(a, b int) *graph.Graph {
	g := graph.New("kab")
	g.AddNodes(a+b, "A")
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	return g
}

func TestEmptyAndTrivial(t *testing.T) {
	if String(graph.New("e")) != "n0;" {
		t.Fatal("empty graph canonical string")
	}
	one := graph.New("1")
	one.AddNode("X")
	if String(one) == String(graph.New("e")) {
		t.Fatal("1-node graph must differ from empty")
	}
	if Equal(path(3, "A"), path(4, "A")) {
		t.Fatal("different sizes cannot be equal")
	}
}

func TestHashConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := cycle(7, "A")
	h := Hash(g)
	for i := 0; i < 5; i++ {
		if Hash(permuted(g, rng)) != h {
			t.Fatal("hash not invariant under permutation")
		}
	}
	if Hash(path(7, "A")) == h {
		t.Fatal("P7 and C7 hash collision (expected distinct)")
	}
}

// TestPropertyPermutationInvariance is the core contract, checked over
// random graphs and random permutations via testing/quick.
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		labels := []string{"C", "N", "O"}
		g := graph.New("q")
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(3)])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					g.MustAddEdge(i, j, labels[rng.Intn(2)])
				}
			}
		}
		return String(g) == String(permuted(g, rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
