package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. Safe for concurrent use;
// Add is a single atomic operation.
type Counter struct {
	name   string
	labels []string // alternating key, value
	v      atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored — counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (in-flight requests, cache hit
// ratio, queue depth). Safe for concurrent use.
type Gauge struct {
	name   string
	labels []string
	bits   atomic.Uint64 // math.Float64bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning 100µs to 10s — the range interactive query serving lives in.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic buckets and a
// CAS-accumulated sum. Quantiles are estimated by linear interpolation
// inside the bucket containing the target rank (the same estimate
// Prometheus's histogram_quantile computes server-side).
type Histogram struct {
	name    string
	labels  []string
	bounds  []float64 // finite upper bounds, ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1) // i == len(bounds) is the +Inf bucket
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts.
// Returns 0 when the histogram is empty. Samples in the overflow bucket
// are attributed to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - prev) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a set of named metrics. Lookups are get-or-create and safe
// for concurrent use; the returned metric pointers record lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// metricKey renders the canonical identity of a metric: name plus its
// label pairs in the order given. Call sites use consistent label order,
// so no sorting is needed on the lookup path.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for name and label pairs, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: append([]string(nil), labels...)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge for name and label pairs, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: append([]string(nil), labels...)}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the histogram for name and label pairs with the
// default latency buckets, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, DefBuckets, labels...)
}

// HistogramBuckets is Histogram with explicit finite bucket upper bounds
// (ascending). The bounds of an existing histogram are not changed.
func (r *Registry) HistogramBuckets(name string, bounds []float64, labels ...string) *Histogram {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{
			name:    name,
			labels:  append([]string(nil), labels...),
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[key] = h
	}
	return h
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnap is one histogram in a snapshot, with precomputed latency
// percentiles — the numbers a dashboard or an e2e test wants without
// re-deriving them from buckets.
type HistogramSnap struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	P50    float64           `json:"p50"`
	P95    float64           `json:"p95"`
	P99    float64           `json:"p99"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric key.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

func labelMap(labels []string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		m[labels[i]] = labels[i+1]
	}
	return m
}

// Snapshot copies the registry's current values. The copy is deep: later
// recordings do not change it.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var snap Snapshot
	for _, k := range sortedKeys(counters) {
		c := counters[k]
		snap.Counters = append(snap.Counters, CounterSnap{
			Name: c.name, Labels: labelMap(c.labels), Value: c.Value()})
	}
	for _, k := range sortedKeys(gauges) {
		g := gauges[k]
		snap.Gauges = append(snap.Gauges, GaugeSnap{
			Name: g.name, Labels: labelMap(g.labels), Value: g.Value()})
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		snap.Histograms = append(snap.Histograms, HistogramSnap{
			Name: h.name, Labels: labelMap(h.labels),
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99)})
	}
	return snap
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Find returns the counter snapshot matching name and label pairs.
func (s Snapshot) Find(name string, labels ...string) (CounterSnap, bool) {
	want := labelMap(labels)
	for _, c := range s.Counters {
		if c.Name == name && sameLabels(c.Labels, want) {
			return c, true
		}
	}
	return CounterSnap{}, false
}

// FindGauge returns the gauge snapshot matching name and label pairs.
func (s Snapshot) FindGauge(name string, labels ...string) (GaugeSnap, bool) {
	want := labelMap(labels)
	for _, g := range s.Gauges {
		if g.Name == name && sameLabels(g.Labels, want) {
			return g, true
		}
	}
	return GaugeSnap{}, false
}

// FindHistogram returns the histogram snapshot matching name and label
// pairs.
func (s Snapshot) FindHistogram(name string, labels ...string) (HistogramSnap, bool) {
	want := labelMap(labels)
	for _, h := range s.Histograms {
		if h.Name == name && sameLabels(h.Labels, want) {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

func sameLabels(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): TYPE lines per family, then one sample line per
// metric, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
		}
	}
	for _, k := range sortedKeys(counters) {
		c := counters[k]
		writeType(c.name, "counter")
		fmt.Fprintf(&b, "%s %d\n", k, c.Value())
	}
	for _, k := range sortedKeys(gauges) {
		g := gauges[k]
		writeType(g.name, "gauge")
		fmt.Fprintf(&b, "%s %v\n", k, g.Value())
	}
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		writeType(h.name, "histogram")
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(&b, "%s %d\n", metricKey(h.name+"_bucket", append(append([]string(nil), h.labels...), "le", fmt.Sprintf("%v", bound))), cum)
		}
		cum += h.buckets[len(h.bounds)].Load()
		fmt.Fprintf(&b, "%s %d\n", metricKey(h.name+"_bucket", append(append([]string(nil), h.labels...), "le", "+Inf")), cum)
		fmt.Fprintf(&b, "%s %v\n", metricKey(h.name+"_sum", h.labels), h.Sum())
		fmt.Fprintf(&b, "%s %d\n", metricKey(h.name+"_count", h.labels), h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
