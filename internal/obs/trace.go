package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// traceSeq feeds process-unique trace IDs.
var traceSeq atomic.Uint64

type traceCtxKey struct{}
type spanCtxKey struct{} // value: int index of the enclosing span within the trace

// SpanRecord is one completed (or still-open) stage within a trace.
type SpanRecord struct {
	Name   string        `json:"name"`
	Parent int           `json:"parent"` // index of the parent span; -1 for roots
	Start  time.Duration `json:"start"`  // offset from trace start
	Dur    time.Duration `json:"dur"`    // zero until End
}

// Trace collects the stage spans of one logical operation (an HTTP
// request, a vqibuild run, one maintenance batch). Safe for concurrent
// span recording; parallel stages attach under the span active in their
// context.
type Trace struct {
	ID    string
	Name  string
	start time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTrace returns a trace with a process-unique ID.
func NewTrace(name string) *Trace {
	n := traceSeq.Add(1)
	return &Trace{
		ID:    fmt.Sprintf("%08x-%04x", uint32(time.Now().UnixNano()), n&0xffff),
		Name:  name,
		start: time.Now(),
	}
}

// WithTrace attaches tr to the context; StartSpan calls below it record
// into tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// StartTrace creates a trace and attaches it to the context in one step.
func StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	tr := NewTrace(name)
	return WithTrace(ctx, tr), tr
}

// Span is one in-progress stage. End stops the clock, completes the
// trace record (if any), and feeds the Default registry's per-stage
// latency histogram.
type Span struct {
	name  string
	start time.Time
	trace *Trace
	idx   int
}

// StartSpan opens a stage span. When the context carries a trace, the
// span is recorded there with the context's enclosing span as parent, and
// the returned context carries this span as the parent for nested stages.
// Without a trace the span still times the stage for the global
// "stage_seconds" histogram family, so pipeline stage percentiles exist
// even when no caller asked for a per-run table.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := &Span{name: name, start: time.Now(), idx: -1}
	if tr := TraceFrom(ctx); tr != nil {
		parent := -1
		if pi, ok := ctx.Value(spanCtxKey{}).(int); ok {
			parent = pi
		}
		sp.trace = tr
		tr.mu.Lock()
		sp.idx = len(tr.spans)
		tr.spans = append(tr.spans, SpanRecord{
			Name:   name,
			Parent: parent,
			Start:  sp.start.Sub(tr.start),
		})
		tr.mu.Unlock()
		ctx = context.WithValue(ctx, spanCtxKey{}, sp.idx)
	}
	return ctx, sp
}

// End completes the span.
func (sp *Span) End() {
	d := time.Since(sp.start)
	if sp.trace != nil {
		sp.trace.mu.Lock()
		sp.trace.spans[sp.idx].Dur = d
		sp.trace.mu.Unlock()
	}
	if On() {
		Default.Histogram("stage_seconds", "stage", sp.name).Observe(d.Seconds())
	}
}

// Spans returns a copy of the trace's span records in start order.
func (tr *Trace) Spans() []SpanRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]SpanRecord, len(tr.spans))
	copy(out, tr.spans)
	return out
}

// Table renders the trace as an indented stage-timing table — the
// -metrics output of vqibuild/vqimaintain:
//
//	vqibuild (a1b2c3d4-0001)  total 1.234s
//	  catapult.cluster   0.000s +0.410s
//	  catapult.csg       0.410s +0.120s
//	  ...
//
// Children are indented under their parents; durations are wall-clock.
func (tr *Trace) Table() string {
	spans := tr.Spans()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)  total %v\n", tr.Name, tr.ID, time.Since(tr.start).Round(time.Millisecond))
	depth := func(i int) int {
		d := 0
		for p := spans[i].Parent; p >= 0; p = spans[p].Parent {
			d++
		}
		return d
	}
	width := 0
	for _, sp := range spans {
		if len(sp.Name) > width {
			width = len(sp.Name)
		}
	}
	for i, sp := range spans {
		indent := strings.Repeat("  ", 1+depth(i))
		fmt.Fprintf(&b, "%s%-*s  %8.3fs +%.3fs\n", indent, width, sp.Name,
			sp.Start.Seconds(), sp.Dur.Seconds())
	}
	return b.String()
}
