package obs

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "route", "/q")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same identity returns the same metric; different labels do not.
	if r.Counter("reqs_total", "route", "/q") != c {
		t.Fatal("get-or-create returned a different counter for the same identity")
	}
	if r.Counter("reqs_total", "route", "/other") == c {
		t.Fatal("different labels must be a different counter")
	}

	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("gauge = %v, want 0.25", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{0.01, 0.1, 1}, "stage", "x")
	// 100 samples uniformly in the first bucket's range.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.5) > 1e-9 {
		t.Fatalf("sum = %v, want 0.5", h.Sum())
	}
	// All mass in [0, 0.01]: every quantile interpolates inside it.
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if v := h.Quantile(q); v <= 0 || v > 0.01 {
			t.Fatalf("q%.0f = %v, want within (0, 0.01]", q*100, v)
		}
	}
	// p50 must sit at about half the bucket, p99 near its top.
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p50 >= p99 {
		t.Fatalf("p50 %v >= p99 %v", p50, p99)
	}

	// Samples beyond every bound land in the overflow bucket and clamp
	// quantiles to the largest finite bound.
	h2 := r.HistogramBuckets("lat2", []float64{0.01, 0.1, 1})
	h2.Observe(50)
	if v := h2.Quantile(0.99); v != 1 {
		t.Fatalf("overflow quantile = %v, want 1 (largest finite bound)", v)
	}
	if h3 := r.HistogramBuckets("lat3", []float64{1}); h3.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestHistogramConcurrentConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if want := float64(workers*per) * 0.001; math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(7)
	r.Counter("b_total", "k", "v").Add(2)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", "stage", "s").Observe(0.02)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	if c, ok := snap.Find("b_total", "k", "v"); !ok || c.Value != 2 {
		t.Fatalf("Find(b_total{k=v}) = %+v, %v", c, ok)
	}
	if _, ok := snap.Find("b_total", "k", "other"); ok {
		t.Fatal("Find must match labels exactly")
	}
	if h, ok := snap.FindHistogram("h", "stage", "s"); !ok || h.Count != 1 {
		t.Fatalf("FindHistogram = %+v, %v", h, ok)
	}
	// The snapshot is deep: later recording must not change it.
	r.Counter("a_total").Add(100)
	if c, _ := snap.Find("a_total"); c.Value != 7 {
		t.Fatalf("snapshot mutated by later recording: %d", c.Value)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "route", "/q").Add(3)
	r.Gauge("inflight").Set(2)
	h := r.HistogramBuckets("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{route="/q"} 3`,
		"# TYPE inflight gauge",
		"inflight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSpans(t *testing.T) {
	ctx, tr := StartTrace(context.Background(), "op")
	if TraceFrom(ctx) != tr {
		t.Fatal("trace not attached to context")
	}
	ctx1, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx1, "inner")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	_, sib := StartSpan(ctx, "sibling")
	sib.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Name != "outer" || spans[0].Parent != -1 {
		t.Fatalf("outer: %+v", spans[0])
	}
	if spans[1].Name != "inner" || spans[1].Parent != 0 {
		t.Fatalf("inner must parent onto outer: %+v", spans[1])
	}
	if spans[2].Parent != -1 {
		t.Fatalf("sibling must be a root: %+v", spans[2])
	}
	if spans[1].Dur <= 0 || spans[0].Dur < spans[1].Dur {
		t.Fatalf("durations inconsistent: outer %v inner %v", spans[0].Dur, spans[1].Dur)
	}
	table := tr.Table()
	for _, want := range []string{"op (", "outer", "inner", "sibling"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestSpanWithoutTraceRecordsStageHistogram(t *testing.T) {
	before := Default.Histogram("stage_seconds", "stage", "obs-test-stage").Count()
	_, sp := StartSpan(context.Background(), "obs-test-stage")
	sp.End()
	after := Default.Histogram("stage_seconds", "stage", "obs-test-stage").Count()
	if after != before+1 {
		t.Fatalf("stage histogram count %d -> %d, want +1", before, after)
	}
}

func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	if On() {
		t.Fatal("On() after SetEnabled(false)")
	}
	h := Default.Histogram("stage_seconds", "stage", "obs-disabled-stage")
	before := h.Count()
	_, sp := StartSpan(context.Background(), "obs-disabled-stage")
	sp.End()
	if h.Count() != before {
		t.Fatal("disabled span still recorded")
	}
	SetEnabled(true)
	if !On() {
		t.Fatal("On() after SetEnabled(true)")
	}
}
