// Package obs is the repository's dependency-free observability layer:
// a metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms with quantile estimation, labeled families) plus lightweight
// span tracing threaded through context.Context.
//
// Design constraints, in order:
//
//   - Zero dependencies. The registry speaks JSON (via Snapshot) and the
//     Prometheus text exposition format (via WritePrometheus) without
//     importing either ecosystem.
//   - Cheap enough for kernel seams. Recording is a handful of atomic
//     operations; hot packages (isomorph, gindex) record once per call,
//     never per search step, and gate on On() so a disabled layer costs
//     one atomic load. The O1 benchmark suite (BENCH_obs.json) tracks the
//     enabled-vs-disabled delta on the K1 kernels.
//   - Deterministic output. Snapshots sort metrics by key, so /metrics
//     responses and stage tables are stable across runs.
//
// Metrics are identified by name plus optional label pairs:
//
//	obs.Default.Counter("vqiserve_requests_total", "route", "/api/query").Add(1)
//	obs.Default.Histogram("stage_seconds", "stage", "catapult.select").Observe(dt)
//
// Get-or-create lookups take a lock; call sites on hot paths should cache
// the returned pointer (package-level vars), after which recording is
// lock-free.
//
// Tracing: StartTrace attaches a *Trace (with a process-unique ID) to a
// context; StartSpan opens a named stage span that records its duration
// both into the trace (for per-request stage tables) and into the
// Default registry's "stage_seconds" histogram family (for fleet-wide
// stage latency percentiles). Spans nest via the context, so the existing
// ctx plumbing through catapult/tattoo/midas/gindex carries parent links
// for free.
package obs

import "sync/atomic"

// enabled is the global kill switch. Instrumented packages check On()
// before recording so a disabled observability layer costs one atomic
// load per instrumented call.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the global recording switch. Disabling does not clear
// existing metric values; it stops new recordings at call sites that gate
// on On().
func SetEnabled(on bool) { enabled.Store(on) }

// On reports whether recording is enabled.
func On() bool { return enabled.Load() }

// Default is the process-wide registry. Library packages (isomorph,
// gindex, the pipeline stages) record here; servers may additionally keep
// a private registry for per-instance metrics and merge both when
// exposing them.
var Default = NewRegistry()
