package repro

// BenchmarkParSpeedup compares the internal/par hot paths at workers=1
// versus workers=NumCPU. On a single-core machine both variants collapse to
// the inline path; on multicore the sub-benchmark ratio is the speedup.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/catapult"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/graphlet"
	"repro/internal/pattern"
	"repro/internal/truss"
)

func workerVariants() []int {
	if runtime.NumCPU() == 1 {
		return []int{1}
	}
	return []int{1, runtime.NumCPU()}
}

func benchVectors(n, dim int) [][]float64 {
	out := make([][]float64, n)
	state := uint64(7)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			v[j] = float64(state%1000) / 1000.0
		}
		out[i] = v
	}
	return out
}

func BenchmarkParSpeedupDistanceMatrix(b *testing.B) {
	vecs := benchVectors(400, 16)
	for _, workers := range workerVariants() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cluster.Matrix(vecs, cluster.Euclidean, workers)
			}
		})
	}
}

func BenchmarkParSpeedupCensus(b *testing.B) {
	g := datagen.WattsStrogatz(3, 800, 8, 0.1)
	for _, workers := range workerVariants() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphlet.CensusN(g, 4, workers)
			}
		})
	}
}

func BenchmarkParSpeedupCorpusGFD(b *testing.B) {
	corpus := benchCorpus(200)
	for _, workers := range workerVariants() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				graphlet.CorpusGFDN(corpus, workers)
			}
		})
	}
}

func BenchmarkParSpeedupTrussDecompose(b *testing.B) {
	g := datagen.BarabasiAlbert(5, 3000, 6)
	for _, workers := range workerVariants() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				truss.DecomposeN(g, workers)
			}
		})
	}
}

func BenchmarkParSpeedupCatapultSelect(b *testing.B) {
	corpus := benchCorpus(150)
	for _, workers := range workerVariants() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := catapult.Config{Budget: benchBudget(), Seed: 1, Workers: workers}
				if _, err := catapult.Select(corpus, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParCoverCache measures the coverage sweep cold (every canonical
// form is a miss and runs its VF2 sweep) against memoized (every lookup is
// a hit).
func BenchmarkParCoverCache(b *testing.B) {
	corpus := benchCorpus(150)
	res, err := catapult.Select(corpus, catapult.Config{Budget: benchBudget(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pats := res.Patterns
	u := pattern.NewUniverse(corpus)
	opts := pattern.MatchOptions()
	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cc := pattern.NewCoverCache(corpus, u, opts)
			cc.Bitsets(pats, 0)
		}
	})
	b.Run("hit", func(b *testing.B) {
		cc := pattern.NewCoverCache(corpus, u, opts)
		cc.Bitsets(pats, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cc.Bitsets(pats, 0)
		}
	})
}
